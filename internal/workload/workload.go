// Package workload synthesizes the page-level access streams of the 23
// Rodinia/Parboil/Polybench applications the paper evaluates (Table II).
//
// The real CUDA binaries are not available in this environment, and the
// mechanisms under study (eviction policy + prefetcher in the UVM driver)
// observe only the page-level fault/touch stream. Each benchmark is therefore
// generated from its access-pattern archetype (the Type I-VI taxonomy of HPE
// [15], which the paper itself uses to explain every result), parameterized
// with the benchmark's footprint, traversal count, intra-chunk page stride
// (NW stride 2, MVT/BIC stride 4 — Section IV-C), hot-region fraction and
// region-moving window. Footprints are scaled by a constant factor to keep
// simulation tractable; all policy comparisons are relative, so the scaling
// preserves who wins and by roughly how much.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/reproductions/cppe/internal/memdef"
)

// PatternType is the Table II access-pattern taxonomy.
type PatternType int

const (
	// TypeI is the streaming pattern.
	TypeI PatternType = iota + 1
	// TypeII is the partly repetitive pattern.
	TypeII
	// TypeIII is the mostly repetitive pattern.
	TypeIII
	// TypeIV is the thrashing pattern.
	TypeIV
	// TypeV is the repetitive-thrashing pattern.
	TypeV
	// TypeVI is the region-moving pattern.
	TypeVI
)

// String returns the Table II name of the pattern type.
func (t PatternType) String() string {
	switch t {
	case TypeI:
		return "Type I (Streaming)"
	case TypeII:
		return "Type II (Partly Repetitive)"
	case TypeIII:
		return "Type III (Mostly Repetitive)"
	case TypeIV:
		return "Type IV (Thrashing)"
	case TypeV:
		return "Type V (Repetitive-Thrashing)"
	case TypeVI:
		return "Type VI (Region Moving)"
	default:
		return fmt.Sprintf("Type?(%d)", int(t))
	}
}

// Short returns the compact label ("I".."VI").
func (t PatternType) Short() string {
	return [...]string{"", "I", "II", "III", "IV", "V", "VI"}[t]
}

// archetype selects the trace generator.
type archetype int

const (
	archStream archetype = iota
	archPartRep
	archMostRep
	archThrash
	archRepThrash
	archRegionMove
)

// params are the per-benchmark generator knobs.
type params struct {
	arch archetype
	// passes is the number of traversals (meaning varies per archetype).
	passes int
	// touchFrac is the fraction of pages that are members of the touched
	// set; non-member pages are never accessed (they become the untouched
	// pages of prefetched chunks).
	touchFrac float64
	// stride, when > 1, makes membership strided within each chunk
	// (every stride-th page), the fixed patterns of NW/MVT/BIC/HIS.
	stride int
	// repFrac is the fraction of the footprint re-traversed by the
	// repetition phases (Type II).
	repFrac float64
	// hotFrac is the hot-region fraction (Type V).
	hotFrac float64
	// winFrac is the moving-window fraction (Type VI).
	winFrac float64
	// shuffled randomizes chunk visit order per pass (BFS-like frontiers).
	shuffled bool
	// rareEvery, when > 0, gives each chunk one off-pattern page that is
	// touched only on every rareEvery-th pass. For strided applications
	// this produces the occasional pattern mismatch *after* a match that
	// separates the two pattern-buffer deletion schemes (Fig. 6/7): under
	// Scheme-1 the mismatch permanently deletes the chunk's pattern, under
	// Scheme-2 the pattern survives.
	rareEvery int
	// subsetFrac, when in (0,1), makes each pass touch only a random
	// subset of the member pages (slowly-filling chunks: BFS frontiers,
	// HWL). Such chunks favor Scheme-1, as the paper observes.
	subsetFrac float64
}

// Benchmark is one Table II application.
type Benchmark struct {
	Name  string
	Abbr  string
	Suite string
	Type  PatternType
	// FootprintMB is the paper-reported memory footprint.
	FootprintMB float64
	p           params
}

// All returns the 23 benchmarks of Table II in paper order.
func All() []Benchmark { return append([]Benchmark(nil), registry...) }

// ByAbbr looks a benchmark up by its Table II abbreviation (e.g. "SRD").
func ByAbbr(abbr string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Abbr == abbr {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Abbrs returns all abbreviations in paper order.
func Abbrs() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Abbr
	}
	return out
}

// ByType returns the benchmarks of one pattern type, in paper order.
func ByType(t PatternType) []Benchmark {
	var out []Benchmark
	for _, b := range registry {
		if b.Type == t {
			out = append(out, b)
		}
	}
	return out
}

var registry = []Benchmark{
	// Type I: streaming.
	{"hotspot", "HOT", "Rodinia", TypeI, 12, params{arch: archStream, passes: 2, touchFrac: 1}},
	{"leukocyte", "LEU", "Rodinia", TypeI, 5.6, params{arch: archStream, passes: 2, touchFrac: 0.8}},
	{"2DCONV", "2DC", "Polybench", TypeI, 128, params{arch: archStream, passes: 1, touchFrac: 1}},
	{"3DCONV", "3DC", "Polybench", TypeI, 127.5, params{arch: archStream, passes: 1, touchFrac: 1}},

	// Type II: partly repetitive.
	{"backprop", "BKP", "Rodinia", TypeII, 9, params{arch: archPartRep, passes: 2, touchFrac: 1, repFrac: 0.5}},
	{"pathfinder", "PAT", "Rodinia", TypeII, 38.5, params{arch: archPartRep, passes: 2, touchFrac: 0.85, repFrac: 0.4}},
	{"dwt2d", "DWT", "Rodinia", TypeII, 27, params{arch: archPartRep, passes: 3, touchFrac: 0.6, repFrac: 0.5}},
	{"kmeans", "KMN", "Rodinia", TypeII, 130, params{arch: archPartRep, passes: 2, touchFrac: 0.8, repFrac: 0.35}},

	// Type III: mostly repetitive.
	{"sad", "SAD", "Parboil", TypeIII, 8.5, params{arch: archMostRep, passes: 4, touchFrac: 0.8}},
	{"nw", "NW", "Rodinia", TypeIII, 32, params{arch: archMostRep, passes: 5, touchFrac: 1, stride: 2, rareEvery: 3}},
	{"bfs", "BFS", "Rodinia", TypeIII, 37.2, params{arch: archMostRep, passes: 3, touchFrac: 0.5, shuffled: true, subsetFrac: 0.55}},
	{"MVT", "MVT", "Polybench", TypeIII, 64.1, params{arch: archMostRep, passes: 3, touchFrac: 1, stride: 4, hotFrac: 0.02}},
	{"BICG", "BIC", "Polybench", TypeIII, 64.1, params{arch: archMostRep, passes: 3, touchFrac: 1, stride: 4, hotFrac: 0.02}},

	// Type IV: thrashing.
	{"srad_v2", "SRD", "Rodinia", TypeIV, 96, params{arch: archThrash, passes: 3, touchFrac: 0.95}},
	{"hotspot3D", "HSD", "Rodinia", TypeIV, 24, params{arch: archThrash, passes: 4, touchFrac: 0.9}},
	{"mri-q", "MRQ", "Parboil", TypeIV, 5, params{arch: archThrash, passes: 6, touchFrac: 1}},
	{"stencil", "STN", "Parboil", TypeIV, 4, params{arch: archThrash, passes: 6, touchFrac: 1}},

	// Type V: repetitive-thrashing.
	{"heartwall", "HWL", "Rodinia", TypeV, 40.7, params{arch: archRepThrash, passes: 3, touchFrac: 0.8, hotFrac: 0.15, subsetFrac: 0.6}},
	{"sgemm", "SGM", "Parboil", TypeV, 12, params{arch: archRepThrash, passes: 3, touchFrac: 1, hotFrac: 0.2}},
	{"histo", "HIS", "Parboil", TypeV, 13.2, params{arch: archRepThrash, passes: 5, touchFrac: 1, stride: 2, hotFrac: 0.1, rareEvery: 3}},
	{"spmv", "SPV", "Parboil", TypeV, 27.3, params{arch: archRepThrash, passes: 3, touchFrac: 0.65, hotFrac: 0.15}},

	// Type VI: region moving.
	{"b+tree", "B+T", "Rodinia", TypeVI, 34.7, params{arch: archRegionMove, passes: 3, touchFrac: 0.6, winFrac: 0.15}},
	{"hybridsort", "HYB", "Rodinia", TypeVI, 104, params{arch: archRegionMove, passes: 3, touchFrac: 0.7, winFrac: 0.1}},
}

// Options control trace generation.
type Options struct {
	// Scale multiplies the paper footprint (default 0.25). Smaller scales
	// run faster; the policy comparisons are scale-relative.
	Scale float64
	// Warps is the number of independent access streams (default 64).
	Warps int
	// AccessesPerPage is how many distinct accesses hit each touched page
	// per traversal (default 2, exercising the data caches).
	AccessesPerPage int
	// Seed perturbs the deterministic per-benchmark RNG.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.Warps == 0 {
		o.Warps = 64
	}
	if o.AccessesPerPage == 0 {
		o.AccessesPerPage = 2
	}
	return o
}

// Trace is a generated workload: one access stream per warp.
type Trace struct {
	Warps [][]memdef.Access
	// FootprintPages is the allocation size in pages (chunk aligned); the
	// touched subset may be smaller for sparse benchmarks.
	FootprintPages int
	// TouchedPages is the number of distinct pages the trace accesses.
	TouchedPages int
	// Accesses is the total access count over all warps.
	Accesses int
}

// minFootprintChunks floors the scaled footprint. MHPE's absolute constants
// (T1/T2/T3, the chainLen/100 initial forward distance, the chainLen/64 x 8
// wrong-eviction buffer) are calibrated for paper-scale chunk chains; chains
// far below ~200 chunks would let the forward-distance cap swallow the whole
// old partition and turn MRU into LRU, which the paper's configurations never
// experience.
const minFootprintChunks = 200

// FootprintPages returns the benchmark's scaled footprint in pages, rounded
// up to a whole number of chunks.
func (b Benchmark) FootprintPages(scale float64) int {
	pages := int(b.FootprintMB * scale * float64(1<<20) / memdef.PageBytes)
	if pages < minFootprintChunks*memdef.ChunkPages {
		pages = minFootprintChunks * memdef.ChunkPages
	}
	rem := pages % memdef.ChunkPages
	if rem != 0 {
		pages += memdef.ChunkPages - rem
	}
	return pages
}

// seedFor mixes the option seed with the benchmark identity.
func (b Benchmark) seedFor(opt Options) int64 {
	h := int64(1469598103934665603)
	for _, c := range b.Abbr {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h ^ opt.Seed
}

// Generate synthesizes the benchmark's trace.
func (b Benchmark) Generate(opt Options) Trace {
	opt = opt.withDefaults()
	pages := b.FootprintPages(opt.Scale)
	rng := rand.New(rand.NewSource(b.seedFor(opt)))
	g := &gen{
		b:     b,
		opt:   opt,
		pages: pages,
		rng:   rng,
		seed:  b.seedFor(opt),
		warps: make([][]memdef.Access, opt.Warps),
	}
	g.buildMembership()
	switch b.p.arch {
	case archStream:
		g.stream()
	case archPartRep:
		g.partRep()
	case archMostRep:
		g.mostRep()
	case archThrash:
		g.thrash()
	case archRepThrash:
		g.repThrash()
	case archRegionMove:
		g.regionMove()
	}
	touched := make(map[memdef.PageNum]struct{})
	total := 0
	for _, w := range g.warps {
		total += len(w)
		for _, a := range w {
			touched[a.Addr.Page()] = struct{}{}
		}
	}
	return Trace{
		Warps:          g.warps,
		FootprintPages: pages,
		TouchedPages:   len(touched),
		Accesses:       total,
	}
}

// gen is the generator working state.
type gen struct {
	b     Benchmark
	opt   Options
	pages int
	rng   *rand.Rand
	seed  int64
	warps [][]memdef.Access
	// member[p] reports whether page p is in the touched set.
	member []bool
	// memberList is the ascending list of member pages.
	memberList []int
}

// inSubset deterministically decides whether member page pg participates in
// the given pass for subset-touching benchmarks (slowly-filling chunks).
func (g *gen) inSubset(pg, pass int) bool {
	f := g.b.p.subsetFrac
	if f <= 0 || f >= 1 {
		return true
	}
	h := uint64(pg)*0x9e3779b97f4a7c15 ^ uint64(pass+1)*0xbf58476d1ce4e5b9 ^ uint64(g.seed)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h&(1<<20-1))/float64(1<<20) < f
}

// rareDue reports whether this pass touches the per-chunk off-pattern page.
func (g *gen) rareDue(pass int) bool {
	re := g.b.p.rareEvery
	return re > 0 && (pass+1)%re == 0
}

// chunkSweep appends one chunk's accesses for a pass to order: its member
// pages (subject to the per-pass subset) and, on rare passes, the chunk's
// off-pattern page (index 1, never a stride member).
func (g *gen) chunkSweep(order []int, c, pass int) []int {
	for k := 0; k < memdef.ChunkPages; k++ {
		pg := c*memdef.ChunkPages + k
		if g.member[pg] && g.inSubset(pg, pass) {
			order = append(order, pg)
		}
	}
	if g.rareDue(pass) {
		order = append(order, c*memdef.ChunkPages+1)
	}
	return order
}

// buildMembership fixes the touched-page set: strided benchmarks touch every
// stride-th page of each chunk; fractional benchmarks touch a random but
// fixed subset. The faulted page of a chunk is always a member by
// construction (faults only happen on member pages).
func (g *gen) buildMembership() {
	p := g.b.p
	g.member = make([]bool, g.pages)
	for i := 0; i < g.pages; i++ {
		switch {
		case p.stride > 1:
			g.member[i] = memdef.PageNum(i).Index()%p.stride == 0
		case p.touchFrac >= 1:
			g.member[i] = true
		default:
			g.member[i] = g.rng.Float64() < p.touchFrac
		}
	}
	// Every chunk must have at least one member page, or the chunk would
	// never fault in and the footprint would shrink.
	for c := 0; c < g.pages/memdef.ChunkPages; c++ {
		any := false
		for i := 0; i < memdef.ChunkPages; i++ {
			if g.member[c*memdef.ChunkPages+i] {
				any = true
				break
			}
		}
		if !any {
			g.member[c*memdef.ChunkPages] = true
		}
	}
	for i, m := range g.member {
		if m {
			g.memberList = append(g.memberList, i)
		}
	}
}

// emit appends the page's accesses to warp w. Each traversal issues
// AccessesPerPage accesses at distinct line offsets; a small fraction are
// writes so dirty write-back traffic exists.
func (g *gen) emit(w, page, salt int) {
	for k := 0; k < g.opt.AccessesPerPage; k++ {
		kind := memdef.Read
		if (page+k+salt)%7 == 0 {
			kind = memdef.Write
		}
		off := uint64((salt+k)*384) % memdef.PageBytes
		g.warps[w] = append(g.warps[w], memdef.Access{
			Addr: memdef.PageNum(page).Addr() + memdef.VirtAddr(off),
			Kind: kind,
		})
	}
}

// blockPages is the number of pages per thread-block-equivalent work unit.
// A pass's global page order is cut into blocks of this size, and block i is
// executed by warp i mod Warps. Because the warps advance in near lockstep
// (same per-block work), the *aggregate* access stream sweeps the order as a
// narrow band of Warps x blockPages pages — the way waves of thread blocks
// tile an array on a real GPU. This is what preserves global reuse distances
// (and hence the thrashing behaviour the paper studies) under concurrency.
const blockPages = 2

// distribute appends one pass's global page order to the warps, block by
// block.
func (g *gen) distribute(order []int, salt int) {
	w := 0
	for i := 0; i < len(order); i += blockPages {
		end := minInt(len(order), i+blockPages)
		for _, pg := range order[i:end] {
			g.emit(w, pg, salt)
		}
		w = (w + 1) % g.opt.Warps
	}
}

// stream: `passes` sequential global sweeps (1-2 for Type I). With a single
// pass nothing is ever reused; with two, the reuse distance is the whole
// footprint.
func (g *gen) stream() {
	for pass := 0; pass < g.b.p.passes; pass++ {
		g.distribute(g.memberList, pass)
	}
}

// thrash: the same global sweep repeated 3-6 times — the LRU-pathological
// cyclic pattern of Type IV. Identical mechanically to stream; the pass
// count is what turns streaming into thrashing under oversubscription.
func (g *gen) thrash() { g.stream() }

// partRep: one full sweep, then `passes-1` re-traversals of the leading
// repFrac portion (Type II: partly repetitive).
func (g *gen) partRep() {
	g.distribute(g.memberList, 0)
	rep := maxInt(1, int(float64(len(g.memberList))*g.b.p.repFrac))
	for pass := 1; pass < g.b.p.passes; pass++ {
		g.distribute(g.memberList[:rep], pass)
	}
}

// mostRep: repeated sweeps with intra-chunk structure (the member pattern:
// strides for NW/MVT/BIC, random sparsity for BFS/SAD). BFS-like benchmarks
// shuffle the global chunk order every pass (frontier randomness); hotFrac
// splices a small hot region (the repeatedly-read vector of MVT/BICG) into
// the order after every few chunks.
func (g *gen) mostRep() {
	p := g.b.p
	chunks := g.pages / memdef.ChunkPages
	hotPages := maxInt(1, int(float64(len(g.memberList))*p.hotFrac))
	for pass := 0; pass < p.passes; pass++ {
		chunkOrder := make([]int, chunks)
		for i := range chunkOrder {
			chunkOrder[i] = i
		}
		if p.shuffled {
			g.rng.Shuffle(chunks, func(i, j int) {
				chunkOrder[i], chunkOrder[j] = chunkOrder[j], chunkOrder[i]
			})
		}
		var order []int
		for i, c := range chunkOrder {
			order = g.chunkSweep(order, c, pass)
			if p.hotFrac > 0 && i%4 == 0 {
				order = append(order, g.memberList[(i*2654435761)%hotPages])
			}
		}
		g.distribute(order, pass)
	}
}

// repThrash: alternating hot-region re-traversals and full sweeps (Type V).
// The hot region keeps re-earning recency while the sweeps cycle the rest of
// the footprint through memory.
func (g *gen) repThrash() {
	p := g.b.p
	hot := g.memberList[:maxInt(1, int(float64(len(g.memberList))*p.hotFrac))]
	chunks := g.pages / memdef.ChunkPages
	for pass := 0; pass < p.passes; pass++ {
		g.distribute(hot, pass*3)
		g.distribute(hot, pass*3+1)
		var sweep []int
		for c := 0; c < chunks; c++ {
			sweep = g.chunkSweep(sweep, c, pass)
		}
		g.distribute(sweep, pass*3+2)
	}
}

// regionMove: a window slides across the member list; at each position the
// window is traversed `passes` times before it advances by half its size
// (Type VI). Recency tracks the window, so the pattern is strongly
// LRU-friendly and MRU-hostile.
func (g *gen) regionMove() {
	p := g.b.p
	n := len(g.memberList)
	win := maxInt(memdef.ChunkPages, int(float64(n)*p.winFrac))
	step := maxInt(1, win/2)
	for lo, salt := 0, 0; lo < n; lo, salt = lo+step, salt+1 {
		hi := minInt(n, lo+win)
		for pass := 0; pass < p.passes; pass++ {
			g.distribute(g.memberList[lo:hi], salt*8+pass)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Summary describes a benchmark for Table II regeneration.
type Summary struct {
	Name, Abbr, Suite string
	Type              PatternType
	FootprintMB       float64
	ScaledPages       int
}

// TableII returns the workload characteristics table at the given scale.
func TableII(scale float64) []Summary {
	if scale == 0 {
		scale = 0.25
	}
	out := make([]Summary, 0, len(registry))
	for _, b := range registry {
		out = append(out, Summary{
			Name: b.Name, Abbr: b.Abbr, Suite: b.Suite, Type: b.Type,
			FootprintMB: b.FootprintMB,
			ScaledPages: b.FootprintPages(scale),
		})
	}
	return out
}

// SortedAbbrs returns abbreviations sorted alphabetically (for stable test
// output).
func SortedAbbrs() []string {
	out := Abbrs()
	sort.Strings(out)
	return out
}

// AccPerPageForTest exposes the default accesses-per-page constant to the
// band-limit test, which reconstructs the block interleaving.
const AccPerPageForTest = 2
