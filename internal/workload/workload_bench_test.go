package workload

import "testing"

// BenchmarkGenerate measures trace generation for a representative benchmark
// of each archetype at the default scale.
func BenchmarkGenerate(b *testing.B) {
	for _, abbr := range []string{"2DC", "KMN", "NW", "SRD", "HIS", "B+T"} {
		bench, _ := ByAbbr(abbr)
		b.Run(abbr, func(b *testing.B) {
			var accesses int
			for i := 0; i < b.N; i++ {
				tr := bench.Generate(Options{Scale: 0.25, Warps: 64})
				accesses = tr.Accesses
			}
			b.ReportMetric(float64(accesses), "accesses")
		})
	}
}
