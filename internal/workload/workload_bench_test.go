package workload

import "testing"

// BenchmarkGenerate measures trace generation for a representative benchmark
// of each archetype at the default scale.
func BenchmarkGenerate(b *testing.B) {
	for _, abbr := range []string{"2DC", "KMN", "NW", "SRD", "HIS", "B+T"} {
		bench, _ := ByAbbr(abbr)
		b.Run(abbr, func(b *testing.B) {
			var accesses int
			for i := 0; i < b.N; i++ {
				tr := bench.Generate(Options{Scale: 0.25, Warps: 64})
				accesses = tr.Accesses
			}
			b.ReportMetric(float64(accesses), "accesses")
		})
	}
}

// BenchmarkWorkloadGenerate measures one full generation plus fingerprint —
// the work a sweep performs exactly once per workload — against the memoized
// lookup every subsequent machine build pays instead. The allocs/op gap
// between the two sub-benchmarks is the per-build saving of trace
// memoization.
func BenchmarkWorkloadGenerate(b *testing.B) {
	bench, _ := ByAbbr("SRD")
	opt := Options{Scale: 0.25, Warps: 64}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewCache()
			if g := c.Get(bench, opt); g.Fingerprint == 0 {
				b.Fatal("degenerate fingerprint")
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		c := NewCache()
		first := c.Get(bench, opt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g := c.Get(bench, opt); g != first {
				b.Fatal("memoized entry not shared")
			}
		}
	})
}
