package workload

import (
	"sync"
	"testing"

	"github.com/reproductions/cppe/internal/memdef"
)

func TestCacheMemoizesByKey(t *testing.T) {
	c := NewCache()
	srd, _ := ByAbbr("SRD")
	hsd, _ := ByAbbr("HSD")
	opt := Options{Scale: 0.05, Warps: 8}

	a := c.Get(srd, opt)
	if b := c.Get(srd, opt); b != a {
		t.Error("same key returned a distinct generation")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}

	// Any knob change is a different generation.
	variants := []Options{
		{Scale: 0.1, Warps: 8},
		{Scale: 0.05, Warps: 16},
		{Scale: 0.05, Warps: 8, AccessesPerPage: 4},
		{Scale: 0.05, Warps: 8, Seed: 1},
	}
	for _, v := range variants {
		if c.Get(srd, v) == a {
			t.Errorf("options %+v shared the base generation", v)
		}
	}
	if c.Get(hsd, opt) == a {
		t.Error("different benchmark shared the generation")
	}
	if want := 2 + len(variants); c.Len() != want {
		t.Errorf("Len = %d, want %d", c.Len(), want)
	}
}

func TestCacheFingerprintMatchesDirectHash(t *testing.T) {
	c := NewCache()
	b, _ := ByAbbr("SRD")
	opt := Options{Scale: 0.05, Warps: 8}
	g := c.Get(b, opt)
	if g.Fingerprint == 0 {
		t.Fatal("zero fingerprint")
	}
	if got := Fingerprint(g.Warps); got != g.Fingerprint {
		t.Errorf("memoized fingerprint %#x != direct hash %#x", g.Fingerprint, got)
	}
	// Equal keys in a fresh cache regenerate the identical trace.
	if g2 := NewCache().Get(b, opt); g2.Fingerprint != g.Fingerprint {
		t.Errorf("regeneration drifted: %#x vs %#x", g2.Fingerprint, g.Fingerprint)
	}
}

func TestCacheConcurrentGetSharesOneGeneration(t *testing.T) {
	c := NewCache()
	b, _ := ByAbbr("HSD")
	opt := Options{Scale: 0.05, Warps: 8}
	const n = 16
	got := make([]*Generated, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.Get(b, opt)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("racer %d got a distinct generation", i)
		}
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCachePoisonReplacesFingerprintOnly(t *testing.T) {
	c := NewCache()
	b, _ := ByAbbr("SRD")
	opt := Options{Scale: 0.05, Warps: 8}
	orig := c.Get(b, opt)

	c.Poison(b, opt, 0xDEAD)
	g := c.Get(b, opt)
	if g.Fingerprint != 0xDEAD {
		t.Errorf("fingerprint = %#x, want the poison value", g.Fingerprint)
	}
	if &g.Warps[0] != &orig.Warps[0] {
		t.Error("poison replaced the trace, not just the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	tr := [][]memdef.Access{
		{{Addr: 0x1000, Kind: memdef.Read}, {Addr: 0x2000, Kind: memdef.Write}},
		{{Addr: 0x3000, Kind: memdef.Read}},
	}
	base := Fingerprint(tr)

	addr := [][]memdef.Access{
		{{Addr: 0x1001, Kind: memdef.Read}, {Addr: 0x2000, Kind: memdef.Write}},
		{{Addr: 0x3000, Kind: memdef.Read}},
	}
	kind := [][]memdef.Access{
		{{Addr: 0x1000, Kind: memdef.Write}, {Addr: 0x2000, Kind: memdef.Write}},
		{{Addr: 0x3000, Kind: memdef.Read}},
	}
	// Same flat access stream, different warp boundary.
	split := [][]memdef.Access{
		{{Addr: 0x1000, Kind: memdef.Read}},
		{{Addr: 0x2000, Kind: memdef.Write}, {Addr: 0x3000, Kind: memdef.Read}},
	}
	for name, v := range map[string][][]memdef.Access{"addr": addr, "kind": kind, "warp-boundary": split} {
		if Fingerprint(v) == base {
			t.Errorf("%s change not reflected in fingerprint", name)
		}
	}
	if Fingerprint(tr) != base {
		t.Error("fingerprint not stable across calls")
	}
}
