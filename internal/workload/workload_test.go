package workload

import (
	"testing"

	"github.com/reproductions/cppe/internal/memdef"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registry has %d benchmarks, want 23 (Table II)", len(all))
	}
	counts := map[PatternType]int{}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Abbr] {
			t.Fatalf("duplicate abbreviation %s", b.Abbr)
		}
		seen[b.Abbr] = true
		counts[b.Type]++
		if b.FootprintMB <= 0 {
			t.Errorf("%s: footprint %v", b.Abbr, b.FootprintMB)
		}
		if b.Suite != "Rodinia" && b.Suite != "Parboil" && b.Suite != "Polybench" {
			t.Errorf("%s: unknown suite %q", b.Abbr, b.Suite)
		}
	}
	// Table II type populations.
	want := map[PatternType]int{TypeI: 4, TypeII: 4, TypeIII: 5, TypeIV: 4, TypeV: 4, TypeVI: 2}
	for ty, n := range want {
		if counts[ty] != n {
			t.Errorf("%v has %d benchmarks, want %d", ty, counts[ty], n)
		}
	}
}

func TestByAbbr(t *testing.T) {
	b, ok := ByAbbr("SRD")
	if !ok || b.Name != "srad_v2" || b.Type != TypeIV {
		t.Fatalf("ByAbbr(SRD) = %+v, %v", b, ok)
	}
	if _, ok := ByAbbr("NOPE"); ok {
		t.Fatal("found nonexistent benchmark")
	}
}

func TestByType(t *testing.T) {
	vi := ByType(TypeVI)
	if len(vi) != 2 || vi[0].Abbr != "B+T" || vi[1].Abbr != "HYB" {
		t.Fatalf("ByType(VI) = %+v", vi)
	}
}

func TestFootprintPagesChunkAligned(t *testing.T) {
	for _, b := range All() {
		for _, scale := range []float64{0.05, 0.25, 1.0} {
			pages := b.FootprintPages(scale)
			if pages%memdef.ChunkPages != 0 {
				t.Errorf("%s at scale %v: %d pages not chunk aligned", b.Abbr, scale, pages)
			}
			if pages < 4*memdef.ChunkPages {
				t.Errorf("%s at scale %v: footprint too small (%d)", b.Abbr, scale, pages)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b, _ := ByAbbr("BFS") // uses shuffling: the hardest determinism case
	opt := Options{Scale: 0.05, Warps: 8}
	a := b.Generate(opt)
	c := b.Generate(opt)
	if a.Accesses != c.Accesses || a.TouchedPages != c.TouchedPages {
		t.Fatalf("nondeterministic: %+v vs %+v", a, c)
	}
	for w := range a.Warps {
		if len(a.Warps[w]) != len(c.Warps[w]) {
			t.Fatalf("warp %d lengths differ", w)
		}
		for i := range a.Warps[w] {
			if a.Warps[w][i] != c.Warps[w][i] {
				t.Fatalf("warp %d diverges at %d", w, i)
			}
		}
	}
}

func TestSeedChangesShuffledTraces(t *testing.T) {
	b, _ := ByAbbr("BFS")
	a := b.Generate(Options{Scale: 0.05, Warps: 4, Seed: 1})
	c := b.Generate(Options{Scale: 0.05, Warps: 4, Seed: 2})
	same := true
	for w := range a.Warps {
		for i := range a.Warps[w] {
			if i < len(c.Warps[w]) && a.Warps[w][i] != c.Warps[w][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical BFS traces")
	}
}

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, b := range All() {
		tr := b.Generate(Options{Scale: 0.03, Warps: 8})
		if tr.Accesses == 0 {
			t.Errorf("%s: empty trace", b.Abbr)
		}
		if len(tr.Warps) != 8 {
			t.Errorf("%s: %d warps", b.Abbr, len(tr.Warps))
		}
		if tr.TouchedPages == 0 || tr.TouchedPages > tr.FootprintPages {
			t.Errorf("%s: touched %d of %d", b.Abbr, tr.TouchedPages, tr.FootprintPages)
		}
		// Every access must fall inside the footprint.
		limit := memdef.PageNum(tr.FootprintPages)
		for _, warp := range tr.Warps {
			for _, a := range warp {
				if a.Addr.Page() >= limit {
					t.Fatalf("%s: access %v beyond footprint %d pages", b.Abbr, a.Addr, tr.FootprintPages)
				}
			}
		}
	}
}

func TestStridedMembership(t *testing.T) {
	// MVT/BIC are pure strided; NW/HIS additionally touch one off-pattern
	// page per chunk on rare passes (the Fig. 6/7 mismatch source).
	for _, abbr := range []string{"NW", "MVT", "BIC", "HIS"} {
		b, _ := ByAbbr(abbr)
		tr := b.Generate(Options{Scale: 0.05, Warps: 4})
		stride := b.p.stride
		offStride := 0
		total := 0
		for _, warp := range tr.Warps {
			for _, a := range warp {
				total++
				if a.Addr.Page().Index()%stride != 0 {
					offStride++
					if b.p.rareEvery == 0 {
						t.Fatalf("%s: access to off-stride page %v (stride %d)", abbr, a.Addr.Page(), stride)
					}
					if a.Addr.Page().Index() != 1 {
						t.Fatalf("%s: off-stride access must hit the rare page (index 1), got %v", abbr, a.Addr.Page())
					}
				}
			}
		}
		if b.p.rareEvery > 0 {
			if offStride == 0 {
				t.Fatalf("%s: no rare off-pattern accesses generated", abbr)
			}
			if offStride*5 > total {
				t.Fatalf("%s: rare accesses too common: %d of %d", abbr, offStride, total)
			}
		}
		// The touched fraction should be near 1/stride of the footprint
		// (plus at most one rare page per chunk).
		frac := float64(tr.TouchedPages) / float64(tr.FootprintPages)
		want := 1.0 / float64(stride)
		if b.p.rareEvery > 0 {
			want += 1.0 / memdef.ChunkPages
		}
		if frac < want*0.8 || frac > want*1.2 {
			t.Fatalf("%s: touched fraction %.3f, want ~%.3f", abbr, frac, want)
		}
	}
}

func TestSubsetTouchingVariesByPass(t *testing.T) {
	// BFS/HWL chunks fill slowly: different passes touch different member
	// subsets, so single-warp per-pass page sets must differ.
	for _, abbr := range []string{"BFS", "HWL"} {
		b, _ := ByAbbr(abbr)
		tr := b.Generate(Options{Scale: 0.05, Warps: 1})
		if len(tr.Warps[0]) == 0 {
			t.Fatalf("%s: empty trace", abbr)
		}
		// Split the single warp's accesses into thirds (approximating the
		// passes) and compare their page sets.
		third := len(tr.Warps[0]) / 3
		set := func(lo, hi int) map[memdef.PageNum]bool {
			out := map[memdef.PageNum]bool{}
			for _, a := range tr.Warps[0][lo:hi] {
				out[a.Addr.Page()] = true
			}
			return out
		}
		a, c := set(0, third), set(2*third, len(tr.Warps[0]))
		diff := 0
		for p := range a {
			if !c[p] {
				diff++
			}
		}
		if diff == 0 {
			t.Errorf("%s: passes touch identical page sets; subset touching broken", abbr)
		}
	}
}

func TestDenseBenchmarksTouchEverything(t *testing.T) {
	for _, abbr := range []string{"HOT", "2DC", "MRQ", "STN"} {
		b, _ := ByAbbr(abbr)
		tr := b.Generate(Options{Scale: 0.05, Warps: 8})
		if tr.TouchedPages != tr.FootprintPages {
			t.Errorf("%s: touched %d of %d pages", abbr, tr.TouchedPages, tr.FootprintPages)
		}
	}
}

func TestSparseBenchmarksLeaveUntouchedPages(t *testing.T) {
	for _, abbr := range []string{"B+T", "BFS", "SPV", "DWT"} {
		b, _ := ByAbbr(abbr)
		tr := b.Generate(Options{Scale: 0.05, Warps: 8})
		if tr.TouchedPages >= tr.FootprintPages {
			t.Errorf("%s: no untouched pages (touched %d of %d)", abbr, tr.TouchedPages, tr.FootprintPages)
		}
	}
}

func TestEveryChunkHasAMember(t *testing.T) {
	for _, b := range All() {
		tr := b.Generate(Options{Scale: 0.05, Warps: 8})
		touched := map[memdef.ChunkID]bool{}
		for _, warp := range tr.Warps {
			for _, a := range warp {
				touched[a.Addr.Chunk()] = true
			}
		}
		chunks := tr.FootprintPages / memdef.ChunkPages
		if len(touched) != chunks {
			t.Errorf("%s: only %d of %d chunks touched", b.Abbr, len(touched), chunks)
		}
	}
}

func TestTracesContainWrites(t *testing.T) {
	b, _ := ByAbbr("HOT")
	tr := b.Generate(Options{Scale: 0.05, Warps: 8})
	writes := 0
	for _, warp := range tr.Warps {
		for _, a := range warp {
			if a.Kind == memdef.Write {
				writes++
			}
		}
	}
	if writes == 0 {
		t.Fatal("no write accesses generated")
	}
	if writes*2 > tr.Accesses {
		t.Fatalf("too many writes: %d of %d", writes, tr.Accesses)
	}
}

func TestAccessVolumeBounded(t *testing.T) {
	// Guard against generator blowups: accesses should stay within a small
	// multiple of footprint x passes x accessesPerPage.
	for _, b := range All() {
		tr := b.Generate(Options{Scale: 0.05, Warps: 16})
		bound := tr.FootprintPages * b.p.passes * 2 * 8 // generous 8x slack
		if tr.Accesses > bound {
			t.Errorf("%s: %d accesses exceed bound %d", b.Abbr, tr.Accesses, bound)
		}
	}
}

func TestTableII(t *testing.T) {
	rows := TableII(0.25)
	if len(rows) != 23 {
		t.Fatalf("Table II rows = %d", len(rows))
	}
	if rows[0].Abbr != "HOT" || rows[len(rows)-1].Abbr != "HYB" {
		t.Fatalf("Table II order wrong: %s..%s", rows[0].Abbr, rows[len(rows)-1].Abbr)
	}
	for _, r := range rows {
		if r.ScaledPages <= 0 {
			t.Errorf("%s: scaled pages %d", r.Abbr, r.ScaledPages)
		}
	}
}

func TestPatternTypeStrings(t *testing.T) {
	if TypeI.String() == "" || TypeVI.Short() != "VI" {
		t.Fatal("pattern type strings")
	}
	if PatternType(9).String() == "" {
		t.Fatal("unknown type must still print")
	}
}

func TestSortedAbbrs(t *testing.T) {
	s := SortedAbbrs()
	if len(s) != 23 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestWarpLoadBalanced(t *testing.T) {
	// The block distributor must spread a pass's work evenly: no warp may
	// carry more than ~3x the mean access count (the thrash archetype is
	// perfectly balanced; sparse archetypes have small imbalance).
	for _, b := range All() {
		tr := b.Generate(Options{Scale: 0.05, Warps: 16})
		mean := tr.Accesses / 16
		if mean == 0 {
			continue
		}
		for w, warp := range tr.Warps {
			if len(warp) > 3*mean {
				t.Errorf("%s: warp %d has %d accesses, mean %d", b.Abbr, w, len(warp), mean)
			}
		}
	}
}

func TestGlobalOrderIsBandLimited(t *testing.T) {
	// Reconstruct the approximate global order by interleaving warps
	// round-robin block by block; consecutive accesses of the thrash
	// archetype must stay within a narrow page band, the property that
	// preserves global reuse distances under concurrency.
	b, _ := ByAbbr("MRQ") // dense thrash: easiest to reason about
	const warps = 8
	tr := b.Generate(Options{Scale: 0.05, Warps: warps})
	pos := make([]int, warps)
	var prev memdef.PageNum
	first := true
	maxJump := 0
	steps := 0
	for {
		progressed := false
		for w := 0; w < warps; w++ {
			for k := 0; k < blockPages*AccPerPageForTest && pos[w] < len(tr.Warps[w]); k++ {
				p := tr.Warps[w][pos[w]].Addr.Page()
				pos[w]++
				progressed = true
				if !first {
					jump := int(p) - int(prev)
					if jump < 0 {
						jump = -jump
					}
					// Wraparound between passes is expected; ignore jumps
					// spanning most of the footprint.
					if jump < tr.FootprintPages/2 && jump > maxJump {
						maxJump = jump
					}
				}
				prev, first = p, false
				steps++
			}
		}
		if !progressed {
			break
		}
	}
	band := warps * blockPages * 4 // generous slack over the ideal band
	if maxJump > band {
		t.Fatalf("max intra-pass jump %d pages exceeds band %d", maxJump, band)
	}
	if steps == 0 {
		t.Fatal("no accesses")
	}
}
