package prefetch

import (
	"errors"
	"testing"

	"github.com/reproductions/cppe/internal/memdef"
)

func nothingResident(memdef.PageNum) bool { return false }

func pagesEqual(got []memdef.PageNum, want ...memdef.PageNum) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestLocalityPlansWholeChunk(t *testing.T) {
	l := NewLocality()
	// Fault in the middle of chunk 2 (pages 32..47).
	got := l.Plan(37, Context{Resident: nothingResident})
	if len(got) != memdef.ChunkPages {
		t.Fatalf("plan = %v", got)
	}
	for i, p := range got {
		if p != memdef.PageNum(32+i) {
			t.Fatalf("plan = %v, want pages 32..47 ascending", got)
		}
	}
}

func TestLocalitySkipsResident(t *testing.T) {
	l := NewLocality()
	resident := func(p memdef.PageNum) bool { return p%2 == 0 && p != 36 }
	got := l.Plan(36, Context{Resident: resident})
	// Faulted page 36 always included; odd pages included; other evens not.
	found := false
	for _, p := range got {
		if p == 36 {
			found = true
		}
		if p != 36 && p%2 == 0 {
			t.Fatalf("plan contains resident page %v", p)
		}
	}
	if !found {
		t.Fatal("faulted page missing from plan")
	}
	if len(got) != 9 { // 8 odd pages + page 36
		t.Fatalf("plan size = %d: %v", len(got), got)
	}
}

func TestLocalityIgnoresMemoryFull(t *testing.T) {
	l := NewLocality()
	got := l.Plan(5, Context{Resident: nothingResident, MemoryFull: true})
	if len(got) != memdef.ChunkPages {
		t.Fatalf("baseline must keep prefetching when full; plan = %v", got)
	}
}

func TestDisableOnFull(t *testing.T) {
	d := NewDisableOnFull()
	before := d.Plan(5, Context{Resident: nothingResident})
	if len(before) != memdef.ChunkPages {
		t.Fatalf("pre-full plan = %v", before)
	}
	after := d.Plan(5, Context{Resident: nothingResident, MemoryFull: true})
	if !pagesEqual(after, 5) {
		t.Fatalf("post-full plan = %v, want just the faulted page", after)
	}
}

func TestNonePlansSinglePage(t *testing.T) {
	n := NewNone()
	if got := n.Plan(123, Context{Resident: nothingResident}); !pagesEqual(got, 123) {
		t.Fatalf("plan = %v", got)
	}
}

func TestPatternBadScheme(t *testing.T) {
	if _, err := NewPattern(DeletionScheme(9), 0); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("NewPattern bad scheme error = %v, want ErrUnknownScheme", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPattern with bad scheme did not panic")
		}
	}()
	MustPattern(DeletionScheme(9), 0)
}

func TestPatternBehavesLikeLocalityBeforeFull(t *testing.T) {
	pf := MustPattern(Scheme2, 0)
	got := pf.Plan(5, Context{Resident: nothingResident})
	if len(got) != memdef.ChunkPages {
		t.Fatalf("plan = %v", got)
	}
}

func TestPatternRecordsOnlySparseChunks(t *testing.T) {
	pf := MustPattern(Scheme2, 0)
	pf.OnEvict(1, memdef.PageBitmap(0x00FF), 8) // untouch 8: recorded
	pf.OnEvict(2, memdef.PageBitmap(0x7FFF), 1) // untouch 1: not recorded
	pf.OnEvict(3, 0, 16)                        // nothing touched: not recorded
	if pf.Len() != 1 {
		t.Fatalf("buffer len = %d, want 1", pf.Len())
	}
	if s := pf.Stats(); s.Recorded != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPatternMatchPrefetchesOnlyPattern(t *testing.T) {
	pf := MustPattern(Scheme2, 0)
	// Chunk 0, stride-2 pattern: pages 0,2,4,...,14 touched.
	var touched memdef.PageBitmap
	for i := 0; i < memdef.ChunkPages; i += 2 {
		touched = touched.Set(i)
	}
	pf.OnEvict(0, touched, 8)
	got := pf.Plan(4, Context{Resident: nothingResident, MemoryFull: true})
	if !pagesEqual(got, 0, 2, 4, 6, 8, 10, 12, 14) {
		t.Fatalf("plan = %v, want the stride-2 pages", got)
	}
	s := pf.Stats()
	if s.Hits != 1 || s.Matches != 1 || s.Mismatches != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPatternMismatchMigratesWholeChunk(t *testing.T) {
	pf := MustPattern(Scheme1, 0)
	var touched memdef.PageBitmap
	for i := 0; i < memdef.ChunkPages; i += 2 {
		touched = touched.Set(i)
	}
	pf.OnEvict(0, touched, 8)
	// Page 5 does not match the stride-2 pattern.
	got := pf.Plan(5, Context{Resident: nothingResident, MemoryFull: true})
	if len(got) != memdef.ChunkPages {
		t.Fatalf("mismatch plan = %v, want whole chunk", got)
	}
}

// TestPatternFig6Schemes reproduces the Fig. 6 example exactly: a chunk with
// touched pattern 0101 (pages 1 and 3 touched, counting from page index 0).
func TestPatternFig6Schemes(t *testing.T) {
	pattern := memdef.PageBitmap(0).Set(1).Set(3)

	// Access stream (1): fault on page 2 — mismatch. Both schemes delete.
	for _, scheme := range []DeletionScheme{Scheme1, Scheme2} {
		pf := MustPattern(scheme, 1)
		pf.OnEvict(0, pattern, 14)
		pf.Plan(2, Context{Resident: nothingResident, MemoryFull: true})
		if pf.Len() != 0 {
			t.Errorf("scheme %d: entry survived first-lookup mismatch", scheme)
		}
	}

	// Access stream (2): fault on page 1 (match), then page 2 (mismatch).
	// Scheme-1 deletes on the mismatch; Scheme-2 keeps the entry because the
	// first lookup matched.
	run := func(scheme DeletionScheme) *Pattern {
		pf := MustPattern(scheme, 1)
		pf.OnEvict(0, pattern, 14)
		resident := map[memdef.PageNum]bool{}
		ctx := Context{
			Resident:   func(p memdef.PageNum) bool { return resident[p] },
			MemoryFull: true,
		}
		for _, p := range pf.Plan(1, ctx) {
			resident[p] = true
		}
		// First fault migrated pages 1 and 3 only.
		if !resident[1] || !resident[3] || resident[2] {
			t.Fatalf("scheme %d: first fault migrated wrong set", scheme)
		}
		got := pf.Plan(2, ctx)
		// Whole chunk except the already-resident 1 and 3.
		for _, p := range got {
			if p == 1 || p == 3 {
				t.Fatalf("scheme %d: replanned resident page %v", scheme, p)
			}
		}
		if len(got) != memdef.ChunkPages-2 {
			t.Fatalf("scheme %d: second plan = %v", scheme, got)
		}
		return pf
	}
	if pf := run(Scheme1); pf.Len() != 0 {
		t.Error("Scheme-1 kept the entry after a mismatch")
	}
	if pf := run(Scheme2); pf.Len() != 1 {
		t.Error("Scheme-2 deleted the entry despite a prior match")
	}
}

func TestPatternReRecordingOverwrites(t *testing.T) {
	pf := MustPattern(Scheme2, 0)
	a := memdef.PageBitmap(0).Set(0)
	b := memdef.PageBitmap(0).Set(1)
	pf.OnEvict(0, a, 15)
	pf.OnEvict(0, b, 15)
	if pf.Len() != 1 {
		t.Fatalf("len = %d", pf.Len())
	}
	got := pf.Plan(memdef.PageNum(1), Context{Resident: nothingResident, MemoryFull: true})
	if !pagesEqual(got, 1) {
		t.Fatalf("plan = %v; stale pattern used", got)
	}
}

func TestTreePrefetchesFaultedChunkWhenColdRegion(t *testing.T) {
	tr := NewTree()
	got := tr.Plan(0, Context{Resident: nothingResident})
	if len(got) != memdef.ChunkPages {
		t.Fatalf("cold plan = %v", got)
	}
}

func TestTreeMajorityExpansion(t *testing.T) {
	tr := NewTree()
	// Chunk 0 resident; faulting into chunk 1 makes the 2-chunk node fully
	// fetched (2/2 > 1/2 requires strictly more than half: 2 > 1 yes), and
	// the 4-chunk node has 2 of 4 -> not expanded.
	tr.OnMigrate([]memdef.PageNum{0}) // chunk 0 fetched
	got := tr.Plan(memdef.ChunkID(1).FirstPage(), Context{Resident: func(p memdef.PageNum) bool {
		return p.Chunk() == 0
	}})
	// Plan = chunk 1 only (16 pages): node of 2 is majority-fetched only
	// after planning chunk 1; expansion adds nothing new (chunk 0 resident).
	if len(got) != memdef.ChunkPages {
		t.Fatalf("plan = %v", got)
	}
	// Now chunks 0,1 fetched; fault into chunk 2: node {2,3} has 1/2 (not
	// majority); node {0,1,2,3} has 3/4 -> expand to chunk 3 as well.
	tr.OnMigrate([]memdef.PageNum{memdef.ChunkID(1).FirstPage()})
	got = tr.Plan(memdef.ChunkID(2).FirstPage(), Context{Resident: func(p memdef.PageNum) bool {
		return p.Chunk() <= 1
	}})
	if len(got) != 2*memdef.ChunkPages {
		t.Fatalf("expansion plan covers %d pages, want %d (chunks 2 and 3)", len(got), 2*memdef.ChunkPages)
	}
}

func TestTreeEvictionShrinksState(t *testing.T) {
	tr := NewTree()
	tr.OnMigrate([]memdef.PageNum{0, 16})
	tr.OnEvict(0, 0, 0)
	if tr.fetched[0] {
		t.Fatal("evicted chunk still marked fetched")
	}
	if !tr.fetched[1] {
		t.Fatal("unrelated chunk forgotten")
	}
}

func TestPrefetcherNames(t *testing.T) {
	cases := map[string]Prefetcher{
		"locality":        NewLocality(),
		"disable-on-full": NewDisableOnFull(),
		"none":            NewNone(),
		"pattern-s1":      MustPattern(Scheme1, 0),
		"pattern-s2":      MustPattern(Scheme2, 0),
		"tree":            NewTree(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("name = %q, want %q", p.Name(), want)
		}
	}
}

func TestPlansAreAscendingAndContainFault(t *testing.T) {
	prefetchers := []Prefetcher{
		NewLocality(), NewDisableOnFull(), NewNone(),
		MustPattern(Scheme1, 0), MustPattern(Scheme2, 0), NewTree(),
	}
	for _, pf := range prefetchers {
		for _, fault := range []memdef.PageNum{0, 7, 31, 100, 1023} {
			for _, full := range []bool{false, true} {
				got := pf.Plan(fault, Context{Resident: nothingResident, MemoryFull: full})
				if len(got) == 0 {
					t.Fatalf("%s: empty plan", pf.Name())
				}
				hasFault := false
				for i, p := range got {
					if p == fault {
						hasFault = true
					}
					if i > 0 && got[i-1] >= p {
						t.Fatalf("%s: plan not strictly ascending: %v", pf.Name(), got)
					}
				}
				if !hasFault {
					t.Fatalf("%s: faulted page missing: %v", pf.Name(), got)
				}
			}
		}
	}
}
