package prefetch

import (
	"sort"

	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/snapshot"
)

// Snapshotter is the checkpoint interface every repository prefetcher
// implements: EncodeState writes the prefetcher's complete mutable state,
// DecodeState restores it into a freshly constructed prefetcher of the same
// configuration. The stateless prefetchers still implement it (with a bare
// section mark) so a checkpoint detects a prefetcher-kind mismatch.
type Snapshotter interface {
	EncodeState(w *snapshot.Writer)
	DecodeState(r *snapshot.Reader)
}

// EncodeState implements Snapshotter (stateless).
func (*Locality) EncodeState(w *snapshot.Writer) { w.Mark("FLOC") }

// DecodeState implements Snapshotter (stateless).
func (*Locality) DecodeState(r *snapshot.Reader) { r.ExpectMark("FLOC") }

// EncodeState implements Snapshotter (stateless).
func (*DisableOnFull) EncodeState(w *snapshot.Writer) { w.Mark("FDOF") }

// DecodeState implements Snapshotter (stateless).
func (*DisableOnFull) DecodeState(r *snapshot.Reader) { r.ExpectMark("FDOF") }

// EncodeState implements Snapshotter (stateless).
func (*None) EncodeState(w *snapshot.Writer) { w.Mark("FNON") }

// DecodeState implements Snapshotter (stateless).
func (*None) DecodeState(r *snapshot.Reader) { r.ExpectMark("FNON") }

// EncodeState implements Snapshotter.
func (t *Tree) EncodeState(w *snapshot.Writer) {
	w.Mark("FTRE")
	keys := make([]memdef.ChunkID, 0, len(t.fetched))
	//cppelint:ordered keys are sorted before encoding
	for c := range t.fetched {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.PutInt(len(keys))
	for _, c := range keys {
		w.PutU64(uint64(c))
	}
}

// DecodeState implements Snapshotter.
func (t *Tree) DecodeState(r *snapshot.Reader) {
	r.ExpectMark("FTRE")
	n := r.GetCount(8)
	for i := 0; i < n; i++ {
		t.fetched[memdef.ChunkID(r.GetU64())] = true
	}
}

// EncodeState implements Snapshotter. The deletion scheme and recording
// threshold are construction configuration, written only as a cross-check.
func (pf *Pattern) EncodeState(w *snapshot.Writer) {
	w.Mark("FPAT")
	w.PutInt(int(pf.scheme))
	w.PutInt(pf.minUntouch)
	keys := make([]memdef.ChunkID, 0, len(pf.buf))
	//cppelint:ordered keys are sorted before encoding
	for c := range pf.buf {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.PutInt(len(keys))
	for _, c := range keys {
		e := pf.buf[c]
		w.PutU64(uint64(c))
		w.PutU16(uint16(e.touched))
		w.PutBool(e.matchedOnce)
	}
	w.PutU64(pf.stats.Recorded)
	w.PutU64(pf.stats.Hits)
	w.PutU64(pf.stats.Matches)
	w.PutU64(pf.stats.Mismatches)
	w.PutU64(pf.stats.Deletions)
	w.PutInt(pf.stats.PeakLen)
}

// DecodeState implements Snapshotter.
func (pf *Pattern) DecodeState(r *snapshot.Reader) {
	r.ExpectMark("FPAT")
	if s := r.GetInt(); r.Err() == nil && s != int(pf.scheme) {
		r.Failf("prefetch: deletion scheme %d in checkpoint, %d configured", s, int(pf.scheme))
		return
	}
	if mu := r.GetInt(); r.Err() == nil && mu != pf.minUntouch {
		r.Failf("prefetch: min-untouch %d in checkpoint, %d configured", mu, pf.minUntouch)
		return
	}
	n := r.GetCount(11)
	for i := 0; i < n; i++ {
		c := memdef.ChunkID(r.GetU64())
		e := &patternEntry{touched: memdef.PageBitmap(r.GetU16()), matchedOnce: r.GetBool()}
		if r.Err() != nil {
			return
		}
		pf.buf[c] = e
	}
	pf.stats.Recorded = r.GetU64()
	pf.stats.Hits = r.GetU64()
	pf.stats.Matches = r.GetU64()
	pf.stats.Mismatches = r.GetU64()
	pf.stats.Deletions = r.GetU64()
	pf.stats.PeakLen = r.GetInt()
}
