package prefetch

import (
	"github.com/reproductions/cppe/internal/memdef"
)

// treeSpanChunks is the largest prefetch neighborhood: a 2 MiB allocation
// block = 32 chunks of 64 KiB, matching the tree the NVIDIA driver builds
// over each 2 MiB region (Ganguly et al. [16]).
const treeSpanChunks = 32

// Tree is the tree-based neighborhood prefetcher: each 2 MiB region is a full
// binary tree whose leaves are 64 KiB basic blocks. A fault migrates its
// basic block; then, walking from the leaf toward the root, whenever more
// than half of a node's leaves have been fetched, the rest of that node's
// subtree is prefetched too.
//
// The paper discusses it as the CUDA driver's strategy; here it serves as an
// ablation alternative to the locality prefetcher.
type Tree struct {
	// fetched tracks chunks with at least one resident page.
	fetched map[memdef.ChunkID]bool
}

// NewTree returns a tree-based prefetcher.
func NewTree() *Tree {
	return &Tree{fetched: make(map[memdef.ChunkID]bool)}
}

// Name implements Prefetcher.
func (t *Tree) Name() string { return "tree" }

// Plan migrates the faulted basic block, then expands up the tree while the
// majority rule holds.
func (t *Tree) Plan(p memdef.PageNum, ctx Context) []memdef.PageNum {
	c := p.Chunk()
	planned := map[memdef.ChunkID]bool{c: true}

	// Walk up: node sizes 2, 4, 8, 16, 32 chunks.
	for span := 2; span <= treeSpanChunks; span *= 2 {
		base := memdef.ChunkID(uint64(c) / uint64(span) * uint64(span))
		have := 0
		for i := 0; i < span; i++ {
			cc := base + memdef.ChunkID(i)
			if t.fetched[cc] || planned[cc] {
				have++
			}
		}
		if have*2 <= span {
			// This node is not majority-fetched, but a higher node may
			// still be (e.g. 3 of 4 when only 1 of this pair is fetched),
			// so keep walking toward the root.
			continue
		}
		for i := 0; i < span; i++ {
			cc := base + memdef.ChunkID(i)
			if !t.fetched[cc] {
				planned[cc] = true
			}
		}
	}

	// Materialize: ascending page order over planned chunks. Every planned
	// chunk lies inside the faulted 2 MiB region (all subtree bases do), so
	// scanning the region in order visits them ascending without ranging over
	// the map — map iteration order is randomized and must never shape a
	// migration plan.
	region := memdef.ChunkID(uint64(c) / treeSpanChunks * treeSpanChunks)
	out := make([]memdef.PageNum, 0, len(planned)*memdef.ChunkPages)
	for cc := region; cc < region+treeSpanChunks; cc++ {
		if !planned[cc] {
			continue
		}
		for i := 0; i < memdef.ChunkPages; i++ {
			q := cc.Page(i)
			if q == p || !ctx.Resident(q) {
				out = append(out, q)
			}
		}
	}
	return out
}

// OnMigrate marks chunks as fetched.
func (t *Tree) OnMigrate(pages []memdef.PageNum) {
	for _, p := range pages {
		t.fetched[p.Chunk()] = true
	}
}

// OnEvict forgets the chunk.
func (t *Tree) OnEvict(c memdef.ChunkID, touched memdef.PageBitmap, untouch int) {
	delete(t.fetched, c)
}
