package prefetch

import (
	"errors"
	"fmt"

	"github.com/reproductions/cppe/internal/memdef"
)

// ErrUnknownScheme reports a DeletionScheme outside the paper's two schemes.
var ErrUnknownScheme = errors.New("prefetch: unknown deletion scheme")

// DeletionScheme selects how the pattern buffer forgets chunks whose faults
// stop matching the recorded touch pattern (Section IV-C, Fig. 6).
type DeletionScheme int

const (
	// Scheme1 deletes a chunk's pattern whenever a faulted page does not
	// match the touch pattern.
	Scheme1 DeletionScheme = 1
	// Scheme2 deletes a chunk's pattern only when the mismatch happens on
	// the first lookup of that entry; once an entry has matched, it stays.
	Scheme2 DeletionScheme = 2
)

// patternEntry is one pattern-buffer record.
type patternEntry struct {
	touched     memdef.PageBitmap // pages touched in the previous residency
	matchedOnce bool              // a fault has matched this pattern before
}

// PatternStats counts pattern-buffer activity.
type PatternStats struct {
	Recorded   uint64 // entries inserted on eviction
	Hits       uint64 // faults that found their chunk in the buffer
	Matches    uint64 // hits whose faulted page matched the pattern
	Mismatches uint64
	Deletions  uint64
	PeakLen    int
}

// Pattern is CPPE's access pattern-aware prefetcher. It behaves like the
// locality prefetcher until memory fills; afterwards it consults a pattern
// buffer of evicted chunks' touch vectors:
//
//   - buffer hit and the faulted page matches the pattern: migrate only the
//     pattern's touched pages (that are not already resident);
//   - buffer hit but mismatch: migrate the whole chunk and delete the entry
//     according to the configured scheme;
//   - buffer miss: migrate the whole chunk.
//
// Only chunks whose untouch level is at least MinUntouch (paper: 8, half a
// chunk) are recorded, keeping the buffer short.
type Pattern struct {
	scheme     DeletionScheme
	minUntouch int
	buf        map[memdef.ChunkID]*patternEntry
	stats      PatternStats
}

// NewPattern returns a pattern-aware prefetcher with the given deletion
// scheme and minimum untouch level for recording (0 means the paper's 8).
// A scheme outside {Scheme1, Scheme2} is ErrUnknownScheme: setup construction
// errors surface through harness Result.Err instead of aborting the process.
func NewPattern(scheme DeletionScheme, minUntouch int) (*Pattern, error) {
	if scheme != Scheme1 && scheme != Scheme2 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownScheme, scheme)
	}
	if minUntouch <= 0 {
		minUntouch = 8
	}
	return &Pattern{
		scheme:     scheme,
		minUntouch: minUntouch,
		buf:        make(map[memdef.ChunkID]*patternEntry),
	}, nil
}

// MustPattern is NewPattern for wiring with compile-time-constant schemes
// (tests, examples); an invalid scheme is a construction-time programmer
// error and panics, like template.Must.
func MustPattern(scheme DeletionScheme, minUntouch int) *Pattern {
	pf, err := NewPattern(scheme, minUntouch)
	if err != nil {
		panic(err)
	}
	return pf
}

// Name implements Prefetcher.
func (pf *Pattern) Name() string { return fmt.Sprintf("pattern-s%d", int(pf.scheme)) }

// Plan implements the pattern lookup described above.
func (pf *Pattern) Plan(p memdef.PageNum, ctx Context) []memdef.PageNum {
	if !ctx.MemoryFull {
		return chunkPages(p, ctx.Resident)
	}
	c := p.Chunk()
	e, ok := pf.buf[c]
	if !ok {
		return chunkPages(p, ctx.Resident)
	}
	pf.stats.Hits++
	if e.touched.Has(p.Index()) {
		// Pattern match: migrate only the touched pages of the pattern.
		pf.stats.Matches++
		e.matchedOnce = true
		out := make([]memdef.PageNum, 0, e.touched.Count())
		for _, i := range e.touched.Indices() {
			q := c.Page(i)
			if q == p || !ctx.Resident(q) {
				out = append(out, q)
			}
		}
		return out
	}
	// Mismatch: whole chunk, and delete per scheme.
	pf.stats.Mismatches++
	if pf.scheme == Scheme1 || !e.matchedOnce {
		delete(pf.buf, c)
		pf.stats.Deletions++
	}
	return chunkPages(p, ctx.Resident)
}

// OnMigrate implements Prefetcher (the buffer is fed by evictions only).
func (pf *Pattern) OnMigrate(pages []memdef.PageNum) {}

// OnEvict records the chunk's touch pattern when it is sparse enough to be
// worth remembering. A chunk with no touched pages at all is not recorded:
// its "pattern" would never match any fault.
func (pf *Pattern) OnEvict(c memdef.ChunkID, touched memdef.PageBitmap, untouch int) {
	if untouch < pf.minUntouch || touched == 0 {
		return
	}
	pf.buf[c] = &patternEntry{touched: touched}
	pf.stats.Recorded++
	if len(pf.buf) > pf.stats.PeakLen {
		pf.stats.PeakLen = len(pf.buf)
	}
}

// Len returns the current buffer length (overhead analysis, Section VI-C).
func (pf *Pattern) Len() int { return len(pf.buf) }

// Stats returns a snapshot of buffer activity.
func (pf *Pattern) Stats() PatternStats { return pf.stats }

// Scheme returns the configured deletion scheme.
func (pf *Pattern) Scheme() DeletionScheme { return pf.scheme }
