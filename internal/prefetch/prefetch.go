// Package prefetch implements the page prefetchers evaluated by the paper:
//
//   - the sequential-local "locality" prefetcher (Zheng et al. [9]), which the
//     baseline keeps using naively under oversubscription;
//   - a disable-on-full variant (Li et al. [11]);
//   - the tree-based neighborhood prefetcher attributed to the NVIDIA driver
//     (Ganguly et al. [16]), provided as an extension/ablation;
//   - CPPE's access pattern-aware prefetcher (Section IV-C), with the two
//     pattern-buffer deletion schemes of Fig. 6/7.
//
// A prefetcher is consulted by the UVM driver on every far fault and returns
// the set of pages to migrate, always including the faulted page.
package prefetch

import "github.com/reproductions/cppe/internal/memdef"

// Context is the driver state a prefetcher may consult when planning.
type Context struct {
	// Resident reports whether a page currently has a valid GPU mapping or
	// an in-flight migration (such pages must not be requested again).
	Resident func(memdef.PageNum) bool
	// MemoryFull is true once GPU memory has filled to capacity (it never
	// becomes false again; capacity is managed by eviction from then on).
	MemoryFull bool
}

// Prefetcher plans the page set migrated on a far fault and observes
// migration/eviction traffic for its internal state.
type Prefetcher interface {
	// Name returns a short identifier ("locality", "pattern-s2", ...).
	Name() string
	// Plan returns the pages to migrate for a fault on page p. The result
	// always contains p, contains no resident pages, and is ordered by
	// ascending page number.
	Plan(p memdef.PageNum, ctx Context) []memdef.PageNum
	// OnMigrate informs the prefetcher that pages became resident.
	OnMigrate(pages []memdef.PageNum)
	// OnEvict informs the prefetcher that chunk c was evicted; touched is
	// the bit vector of pages that were touched while resident, and untouch
	// is the count of migrated-but-untouched pages.
	OnEvict(c memdef.ChunkID, touched memdef.PageBitmap, untouch int)
}

// chunkPages lists the non-resident pages of p's chunk in ascending order —
// the 64 KiB basic-block migration set used by the locality prefetcher.
func chunkPages(p memdef.PageNum, resident func(memdef.PageNum) bool) []memdef.PageNum {
	c := p.Chunk()
	out := make([]memdef.PageNum, 0, memdef.ChunkPages)
	for i := 0; i < memdef.ChunkPages; i++ {
		q := c.Page(i)
		if q == p || !resident(q) {
			out = append(out, q)
		}
	}
	return out
}

// Locality is the sequential-local prefetcher [9]: every fault migrates the
// whole 64 KiB chunk around the faulted page, memory pressure or not. This is
// the prefetch half of the paper's baseline.
type Locality struct{}

// NewLocality returns the locality prefetcher.
func NewLocality() *Locality { return &Locality{} }

// Name implements Prefetcher.
func (*Locality) Name() string { return "locality" }

// Plan returns all non-resident pages of the faulted chunk.
func (*Locality) Plan(p memdef.PageNum, ctx Context) []memdef.PageNum {
	return chunkPages(p, ctx.Resident)
}

// OnMigrate implements Prefetcher (stateless).
func (*Locality) OnMigrate(pages []memdef.PageNum) {}

// OnEvict implements Prefetcher (stateless).
func (*Locality) OnEvict(c memdef.ChunkID, touched memdef.PageBitmap, untouch int) {}

// DisableOnFull prefetches like Locality until GPU memory fills, then
// migrates only the faulted page (Li et al. [11]'s software fallback, the
// paper's Fig. 10 comparison point).
type DisableOnFull struct{}

// NewDisableOnFull returns the disable-on-full prefetcher.
func NewDisableOnFull() *DisableOnFull { return &DisableOnFull{} }

// Name implements Prefetcher.
func (*DisableOnFull) Name() string { return "disable-on-full" }

// Plan returns the chunk before memory fills, the single page after.
func (*DisableOnFull) Plan(p memdef.PageNum, ctx Context) []memdef.PageNum {
	if ctx.MemoryFull {
		return []memdef.PageNum{p}
	}
	return chunkPages(p, ctx.Resident)
}

// OnMigrate implements Prefetcher (stateless).
func (*DisableOnFull) OnMigrate(pages []memdef.PageNum) {}

// OnEvict implements Prefetcher (stateless).
func (*DisableOnFull) OnEvict(c memdef.ChunkID, touched memdef.PageBitmap, untouch int) {}

// None disables prefetching entirely: one page per fault. Used by the HPE
// ablation (HPE was designed for GPUs without prefetch support).
type None struct{}

// NewNone returns the no-prefetch policy.
func NewNone() *None { return &None{} }

// Name implements Prefetcher.
func (*None) Name() string { return "none" }

// Plan returns only the faulted page.
func (*None) Plan(p memdef.PageNum, ctx Context) []memdef.PageNum {
	return []memdef.PageNum{p}
}

// OnMigrate implements Prefetcher (stateless).
func (*None) OnMigrate(pages []memdef.PageNum) {}

// OnEvict implements Prefetcher (stateless).
func (*None) OnEvict(c memdef.ChunkID, touched memdef.PageBitmap, untouch int) {}
