package prefetch

import (
	"github.com/reproductions/cppe/internal/memdef"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPlanNeverIncludesResidentPages: no prefetcher may request a page the
// residency oracle reports as present (except the faulted page itself, which
// by contract is non-resident when Plan is called — the oracle here never
// claims it).
func TestPlanNeverIncludesResidentPages(t *testing.T) {
	prefetchers := func() []Prefetcher {
		return []Prefetcher{
			NewLocality(), NewDisableOnFull(), NewNone(),
			MustPattern(Scheme1, 0), MustPattern(Scheme2, 0), NewTree(),
		}
	}
	f := func(seed int64, faultRaw uint32, full bool) bool {
		rng := rand.New(rand.NewSource(seed))
		fault := memdef.PageNum(faultRaw % (1 << 20))
		resident := map[memdef.PageNum]bool{}
		// Random residency around the fault's chunk (never the fault).
		c := fault.Chunk()
		for i := 0; i < memdef.ChunkPages; i++ {
			if q := c.Page(i); q != fault && rng.Intn(2) == 0 {
				resident[q] = true
			}
		}
		ctx := Context{
			Resident:   func(p memdef.PageNum) bool { return resident[p] },
			MemoryFull: full,
		}
		for _, pf := range prefetchers() {
			for _, p := range pf.Plan(fault, ctx) {
				if p != fault && resident[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternPlanSubsetOfRecordedPattern: on a pattern hit, the plan must be
// a subset of the recorded touched pages.
func TestPatternPlanSubsetOfRecordedPattern(t *testing.T) {
	f := func(maskRaw uint16, faultIdx uint8) bool {
		mask := memdef.PageBitmap(maskRaw)
		if mask == 0 {
			return true
		}
		idx := int(faultIdx) % memdef.ChunkPages
		pf := MustPattern(Scheme2, 1)
		pf.OnEvict(3, mask, 16-mask.Count())
		fault := memdef.ChunkID(3).Page(idx)
		plan := pf.Plan(fault, Context{Resident: nothingResident, MemoryFull: true})
		if mask.Has(idx) {
			// Match: every planned page is in the pattern.
			for _, p := range plan {
				if !mask.Has(p.Index()) {
					return false
				}
			}
			return len(plan) == mask.Count()
		}
		// Mismatch: whole chunk.
		return len(plan) == memdef.ChunkPages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternBufferBounded: the buffer never exceeds the number of distinct
// chunks ever evicted, and deletion monotonically shrinks it.
func TestPatternBufferBounded(t *testing.T) {
	pf := MustPattern(Scheme1, 1)
	rng := rand.New(rand.NewSource(5))
	distinct := map[memdef.ChunkID]bool{}
	for i := 0; i < 5000; i++ {
		c := memdef.ChunkID(rng.Intn(200))
		switch rng.Intn(3) {
		case 0:
			mask := memdef.PageBitmap(rng.Uint32())
			pf.OnEvict(c, mask, 16-mask.Count())
			if mask != 0 {
				distinct[c] = true
			}
		default:
			idx := rng.Intn(memdef.ChunkPages)
			pf.Plan(c.Page(idx), Context{Resident: nothingResident, MemoryFull: true})
		}
		if pf.Len() > len(distinct) {
			t.Fatalf("buffer %d exceeds distinct recorded %d", pf.Len(), len(distinct))
		}
	}
	if pf.Stats().PeakLen == 0 {
		t.Fatal("peak never recorded")
	}
}
