// Package pagetable implements the 4-level radix page table walked by the
// GPU's page-table walker. It maps virtual pages of the unified address space
// to GPU-resident physical frames; pages without a valid GPU mapping raise a
// far fault that is serviced by the UVM driver (package uvm).
//
// The table is structurally faithful — four 9-bit-indexed levels over a
// 48-bit virtual address, with intermediate directory nodes allocated on
// demand — because the walker's memory traffic (one access per level, each
// eligible to hit in the page-walk cache) is part of the modeled cost.
package pagetable

import (
	"errors"
	"fmt"

	"github.com/reproductions/cppe/internal/memdef"
)

// ErrDoubleMap reports a Map of an already-mapped page: the UVM driver is
// responsible for never double-migrating a page, so this is an integrity
// violation of the driver, surfaced as an audit-class error by the caller.
var ErrDoubleMap = errors.New("pagetable: double map")

// ErrUnmapUnmapped reports an Unmap of a page with no valid mapping, the
// eviction-side counterpart of ErrDoubleMap.
var ErrUnmapUnmapped = errors.New("pagetable: unmap of unmapped page")

// Levels is the radix-tree depth (x86-64-style 4-level table).
const Levels = 4

// bitsPerLevel is the number of VA bits consumed by each level index.
const bitsPerLevel = (memdef.VABits - memdef.PageShift) / Levels // 9

const fanout = 1 << bitsPerLevel

// FrameNum is a GPU physical frame number.
type FrameNum uint64

// InvalidFrame is returned by Lookup for non-resident pages.
const InvalidFrame = FrameNum(^uint64(0))

// PTE is a leaf page-table entry.
type PTE struct {
	Frame FrameNum
	// Dirty is set when the page has been written on the GPU; a dirty page
	// must be transferred back over the interconnect on eviction.
	Dirty bool
}

// node is one directory page of the radix tree.
type node struct {
	children [fanout]*node // interior levels
	leaves   []PTE         // level-0 only, allocated lazily
	present  []bool
	// id is the node's pseudo physical identity, assigned lazily on the
	// walker's first visit (see nodeID); 0 means not yet assigned. Keeping it
	// in the node replaces a map[*node]uint64 lookup on every walk level.
	id uint64
}

// Table is a 4-level radix page table.
type Table struct {
	root   node
	mapped int
	// nextNodeID assigns each directory node a pseudo physical address so the
	// walker's per-level accesses have distinct cache-visible addresses.
	nextNodeID uint64
}

// New returns an empty table.
func New() *Table {
	return &Table{}
}

// indexAt extracts the level-l index (l = Levels-1 is the root) of page p.
func indexAt(p memdef.PageNum, l int) int {
	return int(uint64(p)>>(uint(l)*bitsPerLevel)) & (fanout - 1)
}

// Map installs a virtual-to-physical mapping. Mapping an already-mapped page
// returns ErrDoubleMap (and installs nothing): double migration is a UVM
// driver integrity violation, which the caller fail-stops on.
func (t *Table) Map(p memdef.PageNum, f FrameNum) error {
	n := t.walkAlloc(p)
	i := indexAt(p, 0)
	if n.present[i] {
		return fmt.Errorf("%w: %v", ErrDoubleMap, p)
	}
	n.leaves[i] = PTE{Frame: f}
	n.present[i] = true
	t.mapped++
	return nil
}

// Unmap removes the mapping for p and returns its PTE. Unmapping a page that
// is not mapped returns ErrUnmapUnmapped (and removes nothing), for the same
// driver-invariant reason as Map.
func (t *Table) Unmap(p memdef.PageNum) (PTE, error) {
	n := t.walkNoAlloc(p)
	i := indexAt(p, 0)
	if n == nil || n.leaves == nil || !n.present[i] {
		return PTE{}, fmt.Errorf("%w: %v", ErrUnmapUnmapped, p)
	}
	pte := n.leaves[i]
	n.leaves[i] = PTE{}
	n.present[i] = false
	t.mapped--
	return pte, nil
}

// Lookup returns the frame for p, or InvalidFrame if p has no GPU mapping.
func (t *Table) Lookup(p memdef.PageNum) FrameNum {
	n := t.walkNoAlloc(p)
	i := indexAt(p, 0)
	if n == nil || n.leaves == nil || !n.present[i] {
		return InvalidFrame
	}
	return n.leaves[i].Frame
}

// IsMapped reports whether p has a valid GPU mapping.
func (t *Table) IsMapped(p memdef.PageNum) bool { return t.Lookup(p) != InvalidFrame }

// SetDirty marks p dirty. It is a no-op for unmapped pages (a store whose
// page has already been chosen for eviction is replayed later).
func (t *Table) SetDirty(p memdef.PageNum) {
	n := t.walkNoAlloc(p)
	i := indexAt(p, 0)
	if n == nil || n.leaves == nil || !n.present[i] {
		return
	}
	n.leaves[i].Dirty = true
}

// IsDirty reports whether p is mapped and dirty.
func (t *Table) IsDirty(p memdef.PageNum) bool {
	n := t.walkNoAlloc(p)
	i := indexAt(p, 0)
	if n == nil || n.leaves == nil || !n.present[i] {
		return false
	}
	return n.leaves[i].Dirty
}

// Mapped returns the number of currently mapped pages.
func (t *Table) Mapped() int { return t.mapped }

// WalkStep describes one level access performed by the hardware walker: the
// pseudo-address of the directory entry read, for page-walk-cache indexing.
type WalkStep struct {
	Level int // Levels-1 (root) down to 0 (leaf)
	// EntryAddr is a synthetic, stable address of the directory entry that
	// this step reads. Distinct nodes get distinct address spaces.
	EntryAddr memdef.VirtAddr
}

// WalkPath returns the Levels directory-entry accesses a hardware walk of p
// performs, root first. The path is defined even for unmapped pages (the walk
// is what discovers the fault); levels whose directory node does not exist
// yet are still charged one access (reading the non-present entry).
func (t *Table) WalkPath(p memdef.PageNum) []WalkStep {
	return t.AppendWalkPath(make([]WalkStep, 0, Levels), p)
}

// AppendWalkPath is WalkPath appending into dst, for callers that reuse a
// step buffer across walks (the page-table walker's hot path).
func (t *Table) AppendWalkPath(dst []WalkStep, p memdef.PageNum) []WalkStep {
	n := &t.root
	for l := Levels - 1; l >= 0; l-- {
		id := t.nodeID(n)
		idx := indexAt(p, l)
		dst = append(dst, WalkStep{
			Level:     l,
			EntryAddr: memdef.VirtAddr(id<<24 | uint64(idx)<<3),
		})
		if l == 0 {
			break
		}
		next := n.children[indexAt(p, l)]
		if next == nil {
			// The remaining levels fault immediately at this level: the
			// walker reads a non-present entry and stops. Charge only the
			// accesses actually made.
			break
		}
		n = next
	}
	return dst
}

// nodeID assigns IDs on first visit — walk order, not allocation order — so
// the pseudo-address stream (and thus PWC behaviour) is identical to the
// historical map-based assignment.
func (t *Table) nodeID(n *node) uint64 {
	if n.id == 0 {
		t.nextNodeID++
		n.id = t.nextNodeID
	}
	return n.id
}

func (t *Table) walkAlloc(p memdef.PageNum) *node {
	n := &t.root
	for l := Levels - 1; l >= 1; l-- {
		i := indexAt(p, l)
		if n.children[i] == nil {
			n.children[i] = &node{}
		}
		n = n.children[i]
	}
	if n.leaves == nil {
		n.leaves = make([]PTE, fanout)
		n.present = make([]bool, fanout)
	}
	return n
}

func (t *Table) walkNoAlloc(p memdef.PageNum) *node {
	n := &t.root
	for l := Levels - 1; l >= 1; l-- {
		n = n.children[indexAt(p, l)]
		if n == nil {
			return nil
		}
	}
	return n
}
