package pagetable

import (
	"github.com/reproductions/cppe/internal/snapshot"
)

// Encode writes the complete radix tree: per-node pseudo-address IDs, the
// lazily-allocated leaf arrays, and every present PTE. Structure is encoded
// faithfully — including nodes that exist but hold no mappings and leaf
// arrays that are allocated but empty — because the walker's step count and
// PWC address stream depend on which directory nodes exist and which IDs
// they were assigned.
func (t *Table) Encode(w *snapshot.Writer) {
	w.Mark("PGTB")
	w.PutU64(uint64(t.mapped))
	w.PutU64(t.nextNodeID)
	encodeNode(w, &t.root, Levels-1)
}

func encodeNode(w *snapshot.Writer, n *node, level int) {
	w.PutU64(n.id)
	if level == 0 {
		w.PutBool(n.leaves != nil)
		if n.leaves == nil {
			return
		}
		for i := 0; i < fanout; i++ {
			w.PutBool(n.present[i])
			if n.present[i] {
				w.PutU64(uint64(n.leaves[i].Frame))
				w.PutBool(n.leaves[i].Dirty)
			}
		}
		return
	}
	// Child presence bitmap, fanout bits in index order.
	var word uint64
	for i := 0; i < fanout; i++ {
		if n.children[i] != nil {
			word |= 1 << uint(i&63)
		}
		if i&63 == 63 {
			w.PutU64(word)
			word = 0
		}
	}
	for i := 0; i < fanout; i++ {
		if n.children[i] != nil {
			encodeNode(w, n.children[i], level-1)
		}
	}
}

// Decode rebuilds the tree written by Encode into t, which must be empty.
// The encoded mapped-page count is cross-checked against the number of
// present PTEs actually decoded, so a corrupted tree that still parses is
// rejected.
func (t *Table) Decode(r *snapshot.Reader) {
	r.ExpectMark("PGTB")
	if t.mapped != 0 || t.nextNodeID != 0 {
		r.Failf("pagetable: decode into non-empty table")
		return
	}
	wantMapped := r.GetInt()
	t.nextNodeID = r.GetU64()
	got := decodeNode(r, &t.root, Levels-1)
	if r.Err() != nil {
		return
	}
	if wantMapped < 0 || got != wantMapped {
		r.Failf("pagetable: %d present PTEs decoded, header says %d", got, wantMapped)
		return
	}
	t.mapped = got
}

func decodeNode(r *snapshot.Reader, n *node, level int) int {
	n.id = r.GetU64()
	if level == 0 {
		if !r.GetBool() {
			return 0
		}
		n.leaves = make([]PTE, fanout)
		n.present = make([]bool, fanout)
		present := 0
		for i := 0; i < fanout; i++ {
			if r.GetBool() {
				n.present[i] = true
				n.leaves[i] = PTE{Frame: FrameNum(r.GetU64()), Dirty: r.GetBool()}
				present++
			}
			if r.Err() != nil {
				return present
			}
		}
		return present
	}
	var words [fanout / 64]uint64
	for i := range words {
		words[i] = r.GetU64()
	}
	if r.Err() != nil {
		return 0
	}
	present := 0
	for i := 0; i < fanout; i++ {
		if words[i>>6]&(1<<uint(i&63)) == 0 {
			continue
		}
		child := &node{}
		n.children[i] = child
		present += decodeNode(r, child, level-1)
		if r.Err() != nil {
			return present
		}
	}
	return present
}
