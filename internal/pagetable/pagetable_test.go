package pagetable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/reproductions/cppe/internal/memdef"
)

func TestMapLookupUnmap(t *testing.T) {
	pt := New()
	p := memdef.PageNum(0x12345)
	if pt.IsMapped(p) {
		t.Fatal("fresh table maps page")
	}
	pt.Map(p, 7)
	if got := pt.Lookup(p); got != 7 {
		t.Fatalf("Lookup = %d, want 7", got)
	}
	if pt.Mapped() != 1 {
		t.Fatalf("Mapped = %d", pt.Mapped())
	}
	pte, err := pt.Unmap(p)
	if err != nil {
		t.Fatal(err)
	}
	if pte.Frame != 7 || pte.Dirty {
		t.Fatalf("Unmap PTE = %+v", pte)
	}
	if pt.IsMapped(p) || pt.Mapped() != 0 {
		t.Fatal("page still mapped after Unmap")
	}
}

func TestFrameZeroIsValid(t *testing.T) {
	pt := New()
	pt.Map(42, 0)
	if !pt.IsMapped(42) {
		t.Fatal("frame 0 treated as unmapped")
	}
	if pt.Lookup(42) != 0 {
		t.Fatal("frame 0 lookup wrong")
	}
}

func TestDoubleMapError(t *testing.T) {
	pt := New()
	if err := pt.Map(1, 1); err != nil {
		t.Fatal(err)
	}
	err := pt.Map(1, 2)
	if !errors.Is(err, ErrDoubleMap) {
		t.Errorf("double Map error = %v, want ErrDoubleMap", err)
	}
	// The first mapping must survive the rejected remap.
	if got := pt.Lookup(1); got != 1 {
		t.Errorf("Lookup after rejected remap = %d, want 1", got)
	}
}

func TestUnmapUnmappedError(t *testing.T) {
	pt := New()
	_, err := pt.Unmap(99)
	if !errors.Is(err, ErrUnmapUnmapped) {
		t.Errorf("Unmap of unmapped page error = %v, want ErrUnmapUnmapped", err)
	}
}

func TestDirtyTracking(t *testing.T) {
	pt := New()
	pt.Map(5, 50)
	if pt.IsDirty(5) {
		t.Fatal("fresh mapping dirty")
	}
	pt.SetDirty(5)
	if !pt.IsDirty(5) {
		t.Fatal("SetDirty lost")
	}
	pte, err := pt.Unmap(5)
	if err != nil {
		t.Fatal(err)
	}
	if !pte.Dirty {
		t.Fatal("Unmap dropped dirty bit")
	}
	// SetDirty on unmapped page is a harmless no-op.
	pt.SetDirty(5)
	if pt.IsDirty(5) {
		t.Fatal("SetDirty resurrected unmapped page")
	}
}

func TestNeighborIsolation(t *testing.T) {
	// Pages sharing all but the last level index must not interfere.
	pt := New()
	base := memdef.PageNum(0x40000)
	for i := 0; i < 512; i++ {
		pt.Map(base+memdef.PageNum(i), FrameNum(i))
	}
	for i := 0; i < 512; i++ {
		if got := pt.Lookup(base + memdef.PageNum(i)); got != FrameNum(i) {
			t.Fatalf("Lookup(%d) = %d", i, got)
		}
	}
	pt.Unmap(base + 100)
	if pt.IsMapped(base + 100) {
		t.Fatal("unmap failed")
	}
	if !pt.IsMapped(base+99) || !pt.IsMapped(base+101) {
		t.Fatal("unmap disturbed neighbors")
	}
}

func TestMapLookupProperty(t *testing.T) {
	pt := New()
	seen := map[memdef.PageNum]FrameNum{}
	f := func(raw uint64, frame uint32) bool {
		p := memdef.PageNum(raw & (1<<36 - 1))
		if _, ok := seen[p]; ok {
			return pt.Lookup(p) == seen[p]
		}
		pt.Map(p, FrameNum(frame))
		seen[p] = FrameNum(frame)
		return pt.Lookup(p) == FrameNum(frame) && pt.Mapped() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkPathShape(t *testing.T) {
	pt := New()
	p := memdef.PageNum(0x1_2345_6789 & (1<<36 - 1))

	// Before mapping: the root exists, deeper nodes do not, so the walk
	// stops after the first non-present entry (1 access).
	steps := pt.WalkPath(p)
	if len(steps) != 1 || steps[0].Level != Levels-1 {
		t.Fatalf("unmapped walk steps = %+v", steps)
	}

	pt.Map(p, 3)
	steps = pt.WalkPath(p)
	if len(steps) != Levels {
		t.Fatalf("mapped walk has %d steps, want %d", len(steps), Levels)
	}
	for i, s := range steps {
		if s.Level != Levels-1-i {
			t.Fatalf("step %d level = %d", i, s.Level)
		}
	}
	// Entry addresses must be distinct across levels.
	addrs := map[memdef.VirtAddr]bool{}
	for _, s := range steps {
		if addrs[s.EntryAddr] {
			t.Fatalf("duplicate entry address in walk: %+v", steps)
		}
		addrs[s.EntryAddr] = true
	}
}

func TestWalkPathSharesUpperLevels(t *testing.T) {
	pt := New()
	a := memdef.PageNum(0x1000)
	b := memdef.PageNum(0x1001) // same leaf node, adjacent entries
	pt.Map(a, 1)
	pt.Map(b, 2)
	sa, sb := pt.WalkPath(a), pt.WalkPath(b)
	for i := 0; i < Levels-1; i++ {
		if sa[i].EntryAddr != sb[i].EntryAddr {
			t.Fatalf("level %d entries differ for adjacent pages", sa[i].Level)
		}
	}
	if sa[Levels-1].EntryAddr == sb[Levels-1].EntryAddr {
		t.Fatal("leaf entries identical for distinct pages")
	}
}

func TestWalkPathStableAcrossCalls(t *testing.T) {
	pt := New()
	rng := rand.New(rand.NewSource(1))
	pages := make([]memdef.PageNum, 100)
	for i := range pages {
		pages[i] = memdef.PageNum(rng.Uint64() & (1<<36 - 1))
		pt.Map(pages[i], FrameNum(i))
	}
	for _, p := range pages {
		s1, s2 := pt.WalkPath(p), pt.WalkPath(p)
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("walk path unstable for %v", p)
			}
		}
	}
}

func TestManyMappingsStress(t *testing.T) {
	pt := New()
	rng := rand.New(rand.NewSource(42))
	ref := map[memdef.PageNum]FrameNum{}
	for i := 0; i < 20000; i++ {
		p := memdef.PageNum(rng.Uint64() & (1<<30 - 1))
		if f, ok := ref[p]; ok {
			if rng.Intn(2) == 0 {
				got, err := pt.Unmap(p)
				if err != nil {
					t.Fatal(err)
				}
				if got.Frame != f {
					t.Fatalf("Unmap(%v).Frame = %d, want %d", p, got.Frame, f)
				}
				delete(ref, p)
			}
			continue
		}
		f := FrameNum(rng.Uint64())
		if f == InvalidFrame {
			f = 0
		}
		pt.Map(p, f)
		ref[p] = f
	}
	if pt.Mapped() != len(ref) {
		t.Fatalf("Mapped = %d, want %d", pt.Mapped(), len(ref))
	}
	for p, f := range ref {
		if pt.Lookup(p) != f {
			t.Fatalf("Lookup(%v) = %d, want %d", p, pt.Lookup(p), f)
		}
	}
}
