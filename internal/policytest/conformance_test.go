package policytest_test

import (
	"testing"

	"github.com/reproductions/cppe/internal/policy"
	"github.com/reproductions/cppe/internal/policytest"
)

// TestEvictionConformance runs every registered eviction policy — the nine
// built-ins plus learned — through the full conformance kit.
func TestEvictionConformance(t *testing.T) {
	names := policy.EvictionNames()
	if len(names) < 8 {
		t.Fatalf("only %d eviction policies registered: %v", len(names), names)
	}
	for _, name := range names {
		reg, err := policy.Lookup(policy.KindEviction, name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			policytest.Run(t, reg.NewEviction)
		})
	}
}

// TestPrefetchConformance runs every registered prefetcher through the
// prefetch conformance kit.
func TestPrefetchConformance(t *testing.T) {
	names := policy.PrefetchNames()
	if len(names) < 6 {
		t.Fatalf("only %d prefetchers registered: %v", len(names), names)
	}
	for _, name := range names {
		reg, err := policy.Lookup(policy.KindPrefetch, name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			policytest.RunPrefetch(t, reg.NewPrefetch)
		})
	}
}
