// Package policytest is the conformance kit for eviction policies and
// prefetchers: Run (and RunPrefetch) drive an implementation through a
// deterministic scripted machine — the same event contract the UVM driver
// guarantees — and fail the test on any contract violation. The kit is what
// "correct policy" means operationally; every in-tree policy passes it, and
// external RegisterPolicy implementations are expected to run it in their own
// test suites:
//
//	func TestMyPolicy(t *testing.T) {
//		policytest.Run(t, func(env policy.Env) (evict.Policy, error) {
//			return NewMyPolicy(env.Seed), nil
//		})
//	}
//
// Checks:
//
//   - event-contract ordering: OnFault → SelectVictim/OnEvicted (to make
//     room) → OnMigrate → OnTouch, exactly as the driver fires them, with no
//     panics along the way;
//   - SelectVictim never returns an excluded chunk, never a chunk the policy
//     was not told is resident, and reports ok=false when every candidate is
//     excluded (rather than returning something anyway);
//   - Tracked bookkeeping matches machine residency as a set after every
//     eviction (the invariant the integrity auditor enforces in real runs);
//   - snapshot → restore → bit-identical decisions: a policy restored from
//     its encoded state replays the remainder of the run exactly, and
//     re-encodes to identical bytes;
//   - determinism under GOMAXPROCS changes and heap churn: two instances fed
//     the identical script make identical decisions while the allocator and
//     scheduler are perturbed around them.
package policytest

import (
	"runtime"
	"sort"
	"testing"

	"github.com/reproductions/cppe/internal/evict"
	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/policy"
	"github.com/reproductions/cppe/internal/prefetch"
	"github.com/reproductions/cppe/internal/snapshot"
)

// Script parameters: small enough to run every registered policy with -race
// in CI, large enough to fill the machine many times over and force hundreds
// of evictions.
const (
	scriptChunks   = 64 // footprint of the scripted workload, in chunks
	scriptCapacity = 16 // machine capacity, in chunks
	scriptSteps    = 4000
	scriptSeed     = 0x5eed_c0de
)

// machine is the scripted stand-in for the UVM driver: it owns residency and
// touch bitmaps, fires the policy event contract in driver order, and
// implements policy.MachineView over its own state. All control flow derives
// from one splitmix64 stream, so a deterministic policy yields a
// deterministic decision log.
type machine struct {
	t   *testing.T
	pol evict.Policy
	rng uint64

	resident  []memdef.PageBitmap // by chunk index
	touched   []memdef.PageBitmap
	nResident int
	cycle     memdef.Cycle
	evictions []policy.EvictionRecord

	// decisions is the victim log — the policy's observable behavior.
	decisions []memdef.ChunkID
}

func newMachine(t *testing.T, pol evict.Policy, seed uint64) *machine {
	m := &machine{
		t:        t,
		pol:      pol,
		rng:      seed,
		resident: make([]memdef.PageBitmap, scriptChunks),
		touched:  make([]memdef.PageBitmap, scriptChunks),
	}
	if vb, ok := pol.(policy.ViewBinder); ok {
		vb.BindView(machineView{m})
	}
	return m
}

func (m *machine) next() uint64 {
	m.rng += 0x9e3779b97f4a7c15
	z := m.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// clone deep-copies the machine around a new policy instance (the
// snapshot-equivalence check continues a cloned machine with a restored
// policy). The decision log starts empty so the two continuations compare
// only post-restore behavior.
func (m *machine) clone(t *testing.T, pol evict.Policy) *machine {
	c := &machine{
		t:         t,
		pol:       pol,
		rng:       m.rng,
		resident:  append([]memdef.PageBitmap(nil), m.resident...),
		touched:   append([]memdef.PageBitmap(nil), m.touched...),
		nResident: m.nResident,
		cycle:     m.cycle,
		evictions: append([]policy.EvictionRecord(nil), m.evictions...),
	}
	if vb, ok := pol.(policy.ViewBinder); ok {
		vb.BindView(machineView{c})
	}
	return c
}

// machineView implements policy.MachineView over the scripted machine.
type machineView struct{ m *machine }

var _ policy.MachineView = machineView{}

func (v machineView) Cycle() memdef.Cycle { return v.m.cycle }
func (v machineView) CapacityPages() int  { return scriptCapacity * memdef.ChunkPages }
func (v machineView) ResidentPages() int {
	n := 0
	for _, bm := range v.m.resident {
		n += bm.Count()
	}
	return n
}
func (v machineView) MemoryFull() bool { return v.m.nResident >= scriptCapacity }
func (v machineView) Resident(p memdef.PageNum) bool {
	c := int(p.Chunk())
	if c < 0 || c >= len(v.m.resident) {
		return false
	}
	return v.m.resident[c]&(1<<uint(p.Index())) != 0
}
func (v machineView) ChunkResident(c memdef.ChunkID) memdef.PageBitmap {
	if int(c) >= len(v.m.resident) {
		return 0
	}
	return v.m.resident[c]
}
func (v machineView) ChunkTouched(c memdef.ChunkID) memdef.PageBitmap {
	if int(c) >= len(v.m.touched) {
		return 0
	}
	return v.m.touched[c]
}
func (v machineView) RecentEvictions() []policy.EvictionRecord {
	evs := v.m.evictions
	if len(evs) > policy.WindowSize {
		evs = evs[len(evs)-policy.WindowSize:]
	}
	return append([]policy.EvictionRecord(nil), evs...)
}

// evictOne asks the policy for a victim (with faulting excluded, plus extra
// when non-negative), validates the answer, and applies the eviction.
func (m *machine) evictOne(faulting memdef.ChunkID, extra memdef.ChunkID, haveExtra bool) {
	m.t.Helper()
	excluded := func(c memdef.ChunkID) bool {
		return c == faulting || (haveExtra && c == extra)
	}
	v, ok := m.pol.SelectVictim(excluded)
	if !ok {
		m.t.Fatalf("step %v: SelectVictim found no victim with %d chunks resident", m.cycle, m.nResident)
	}
	if excluded(v) {
		m.t.Fatalf("step %v: SelectVictim returned excluded chunk %v", m.cycle, v)
	}
	if int(v) >= len(m.resident) || m.resident[v] == 0 {
		m.t.Fatalf("step %v: SelectVictim returned non-resident chunk %v", m.cycle, v)
	}
	untouch := (m.resident[v] &^ m.touched[v]).Count()
	m.evictions = append(m.evictions, policy.EvictionRecord{
		Chunk: v, Touched: m.resident[v] & m.touched[v], Untouch: untouch, Cycle: m.cycle,
	})
	m.resident[v] = 0
	m.touched[v] = 0
	m.nResident--
	m.pol.OnEvicted(v, untouch)
	m.decisions = append(m.decisions, v)
}

// step advances the script once: a fault on a non-resident chunk (evicting to
// capacity first, exactly like the driver) or a touch on a resident page.
func (m *machine) step() {
	m.t.Helper()
	m.cycle++
	c := memdef.ChunkID(m.next() % scriptChunks)
	if m.resident[c] == 0 {
		m.pol.OnFault(c)
		for m.nResident >= scriptCapacity {
			// Occasionally exclude one extra resident chunk, as the driver
			// does for chunks with in-flight state.
			extra := memdef.ChunkID(m.next() % scriptChunks)
			m.evictOne(c, extra, m.next()%4 == 0)
		}
		m.resident[c] = memdef.FullBitmap
		m.nResident++
		m.pol.OnMigrate(c, memdef.FullBitmap)
		return
	}
	idx := int(m.next() % memdef.ChunkPages)
	bit := memdef.PageBitmap(1) << uint(idx)
	if m.touched[c]&bit == 0 {
		m.touched[c] |= bit
		m.pol.OnTouch(c, idx)
	}
}

// checkTracked verifies Tracked bookkeeping equals machine residency as a
// set, in any order.
func (m *machine) checkTracked() {
	m.t.Helper()
	tr, ok := m.pol.(evict.Tracked)
	if !ok {
		return
	}
	got := append([]memdef.ChunkID(nil), tr.TrackedChunks()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	var want []memdef.ChunkID
	for c, bm := range m.resident {
		if bm != 0 {
			want = append(want, memdef.ChunkID(c))
		}
	}
	if len(got) != len(want) {
		m.t.Fatalf("TrackedChunks has %d chunks, machine has %d resident", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			m.t.Fatalf("TrackedChunks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// build constructs a fresh policy from the factory with the kit's Env.
func build(t *testing.T, factory policy.EvictionFactory) evict.Policy {
	t.Helper()
	pol, err := factory(policy.Env{Config: memdef.DefaultConfig(), Seed: scriptSeed})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if pol == nil {
		t.Fatal("factory returned a nil policy")
	}
	return pol
}

// encode snapshots the policy's state, failing the test on any codec error.
func encode(t *testing.T, pol evict.Policy) []byte {
	t.Helper()
	ps, ok := pol.(evict.Snapshotter)
	if !ok {
		return nil
	}
	w := snapshot.NewWriter(1 << 12)
	ps.EncodeState(w)
	frame, err := w.Frame()
	if err != nil {
		t.Fatalf("EncodeState: %v", err)
	}
	return frame
}

// Run drives one eviction policy through the full conformance suite. The
// factory must return a fresh instance per call (the suite constructs
// several and compares their behavior).
func Run(t *testing.T, factory policy.EvictionFactory) {
	t.Helper()

	t.Run("contract", func(t *testing.T) {
		pol := build(t, factory)
		// Empty policy: no victim exists, and saying so is mandatory.
		if v, ok := pol.SelectVictim(func(memdef.ChunkID) bool { return false }); ok {
			t.Fatalf("empty policy returned victim %v", v)
		}
		m := newMachine(t, pol, scriptSeed)
		for i := 0; i < scriptSteps; i++ {
			m.step()
			if i%64 == 0 {
				m.checkTracked()
			}
		}
		m.checkTracked()
		if len(m.decisions) == 0 {
			t.Fatal("script produced no evictions; capacity pressure never materialized")
		}
		// All candidates excluded: the policy must decline, not loop or
		// fabricate a victim.
		if v, ok := pol.SelectVictim(func(memdef.ChunkID) bool { return true }); ok {
			t.Fatalf("SelectVictim with everything excluded returned %v", v)
		}
	})

	t.Run("determinism", func(t *testing.T) {
		prev := runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
		// Heap churn beside the second run: a policy whose decisions depend
		// on addresses, map order, or timing will diverge.
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			var garbage [][]byte
			for {
				select {
				case <-stop:
					return
				default:
					garbage = append(garbage, make([]byte, 1<<12))
					if len(garbage) > 256 {
						garbage = garbage[:0]
					}
				}
			}
		}()
		a := newMachine(t, build(t, factory), scriptSeed)
		for i := 0; i < scriptSteps; i++ {
			a.step()
		}
		b := newMachine(t, build(t, factory), scriptSeed)
		for i := 0; i < scriptSteps; i++ {
			b.step()
		}
		close(stop)
		<-done
		if len(a.decisions) != len(b.decisions) {
			t.Fatalf("decision logs differ in length: %d vs %d", len(a.decisions), len(b.decisions))
		}
		for i := range a.decisions {
			if a.decisions[i] != b.decisions[i] {
				t.Fatalf("decision %d differs: %v vs %v", i, a.decisions[i], b.decisions[i])
			}
		}
	})

	t.Run("snapshot", func(t *testing.T) {
		pol := build(t, factory)
		if _, ok := pol.(evict.Snapshotter); !ok {
			t.Skipf("%s does not implement evict.Snapshotter", pol.Name())
		}
		a := newMachine(t, pol, scriptSeed)
		for i := 0; i < scriptSteps/2; i++ {
			a.step()
		}
		frame := encode(t, pol)

		restored := build(t, factory)
		r, err := snapshot.Open(frame)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		restored.(evict.Snapshotter).DecodeState(r)
		if err := r.Close(); err != nil {
			t.Fatalf("DecodeState: %v", err)
		}

		b := a.clone(t, restored)
		a.decisions = nil
		for i := 0; i < scriptSteps/2; i++ {
			a.step()
			b.step()
		}
		if len(a.decisions) != len(b.decisions) {
			t.Fatalf("post-restore decision logs differ in length: %d vs %d", len(a.decisions), len(b.decisions))
		}
		for i := range a.decisions {
			if a.decisions[i] != b.decisions[i] {
				t.Fatalf("post-restore decision %d differs: original %v, restored %v", i, a.decisions[i], b.decisions[i])
			}
		}
		// The continued original and the continued restore must also encode
		// to identical bytes — state equivalence, not just decision luck.
		fa, fb := encode(t, a.pol), encode(t, b.pol)
		if string(fa) != string(fb) {
			t.Fatalf("post-restore encodings differ: %d vs %d bytes", len(fa), len(fb))
		}
	})
}

// RunPrefetch drives one prefetcher through the conformance suite: Plan
// output invariants (contains the faulted page, no resident pages, ascending
// order), determinism, and snapshot equivalence.
func RunPrefetch(t *testing.T, factory policy.PrefetchFactory) {
	t.Helper()

	buildPF := func(t *testing.T) *prefetchRunner {
		t.Helper()
		pf, err := factory(policy.Env{Config: memdef.DefaultConfig(), Seed: scriptSeed})
		if err != nil {
			t.Fatalf("factory: %v", err)
		}
		if pf == nil {
			t.Fatal("factory returned a nil prefetcher")
		}
		return &prefetchRunner{t: t, pf: pf, rng: scriptSeed,
			resident: make([]memdef.PageBitmap, scriptChunks)}
	}

	t.Run("contract", func(t *testing.T) {
		r := buildPF(t)
		for i := 0; i < scriptSteps; i++ {
			r.step()
		}
		if r.plans == 0 {
			t.Fatal("script produced no prefetch plans")
		}
		if !r.full {
			t.Fatal("script never filled memory; eviction traffic was not exercised")
		}
	})

	t.Run("determinism", func(t *testing.T) {
		a, b := buildPF(t), buildPF(t)
		for i := 0; i < scriptSteps; i++ {
			a.step()
			b.step()
		}
		if a.planHash != b.planHash || a.planPages != b.planPages {
			t.Fatalf("plan streams diverge: %#x/%d vs %#x/%d pages",
				a.planHash, a.planPages, b.planHash, b.planPages)
		}
	})

	t.Run("snapshot", func(t *testing.T) {
		a := buildPF(t)
		ps, ok := a.pf.(prefetch.Snapshotter)
		if !ok {
			t.Skipf("%s has no snapshot support", a.pf.Name())
		}
		for i := 0; i < scriptSteps/2; i++ {
			a.step()
		}
		w := snapshot.NewWriter(1 << 12)
		ps.EncodeState(w)
		frame, err := w.Frame()
		if err != nil {
			t.Fatalf("EncodeState: %v", err)
		}
		b := buildPF(t)
		bs, ok := b.pf.(prefetch.Snapshotter)
		if !ok {
			t.Fatalf("fresh %s instance has no snapshot support", b.pf.Name())
		}
		rd, err := snapshot.Open(frame)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		bs.DecodeState(rd)
		if err := rd.Close(); err != nil {
			t.Fatalf("DecodeState: %v", err)
		}
		// Clone the driver state into b and continue both in lockstep.
		b.rng = a.rng
		b.resident = append(b.resident[:0], a.resident...)
		b.full = a.full
		a.planHash, a.planPages = 0, 0
		b.planHash, b.planPages = 0, 0
		for i := 0; i < scriptSteps/2; i++ {
			a.step()
			b.step()
		}
		if a.planHash != b.planHash || a.planPages != b.planPages {
			t.Fatalf("post-restore plan streams diverge: %#x/%d vs %#x/%d pages",
				a.planHash, a.planPages, b.planHash, b.planPages)
		}
	})
}

// prefetchRunner drives a prefetcher through fault/migrate/evict traffic with
// the Plan contract checked on every fault.
type prefetchRunner struct {
	t        *testing.T
	pf       prefetch.Prefetcher
	rng      uint64
	resident []memdef.PageBitmap
	nPages   int
	full     bool

	plans     int
	planHash  uint64
	planPages int
}

func (r *prefetchRunner) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *prefetchRunner) isResident(p memdef.PageNum) bool {
	c := int(p.Chunk())
	if c < 0 || c >= len(r.resident) {
		return false
	}
	return r.resident[c]&(1<<uint(p.Index())) != 0
}

// step faults a non-resident page (validating and applying the resulting
// plan, with capacity evictions first when full) or evicts a resident chunk
// outright to feed the prefetcher's OnEvict path.
func (r *prefetchRunner) step() {
	r.t.Helper()
	const capacityPages = scriptCapacity * memdef.ChunkPages
	c := memdef.ChunkID(r.next() % scriptChunks)
	idx := int(r.next() % memdef.ChunkPages)
	p := c.Page(idx)
	if r.isResident(p) {
		// Sporadically evict this chunk with a pseudo-random touch pattern,
		// standing in for the driver's capacity evictions.
		if r.next()%8 == 0 {
			touched := r.resident[c] & memdef.PageBitmap(r.next())
			untouch := (r.resident[c] &^ touched).Count()
			r.nPages -= r.resident[c].Count()
			r.resident[c] = 0
			r.pf.OnEvict(c, touched, untouch)
		}
		return
	}
	plan := r.pf.Plan(p, prefetch.Context{Resident: r.isResident, MemoryFull: r.full})
	seenP := false
	for i, q := range plan {
		if i > 0 && q <= plan[i-1] {
			r.t.Fatalf("plan for %v not in ascending order: %v", p, plan)
		}
		if r.isResident(q) {
			r.t.Fatalf("plan for %v contains resident page %v", p, q)
		}
		if q == p {
			seenP = true
		}
	}
	if !seenP {
		r.t.Fatalf("plan for %v does not contain the faulted page: %v", p, plan)
	}
	r.plans++
	r.planPages += len(plan)
	for _, q := range plan {
		r.planHash = (r.planHash ^ uint64(q)) * 0x100000001b3
		qc := int(q.Chunk())
		if qc >= 0 && qc < len(r.resident) {
			bit := memdef.PageBitmap(1) << uint(q.Index())
			if r.resident[qc]&bit == 0 {
				r.resident[qc] |= bit
				r.nPages++
			}
		}
	}
	r.pf.OnMigrate(plan)
	if r.nPages >= capacityPages {
		r.full = true
	}
}
