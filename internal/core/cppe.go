// Package core assembles CPPE — Coordinated Page Prefetch and Eviction — the
// paper's contribution (Section IV): the MHPE eviction policy and the access
// pattern-aware prefetcher, coupled in a fine-grained manner through the UVM
// driver's event flow:
//
//   - MHPE is prefetch-semantics-aware: it classifies the application by the
//     untouch level of evicted (prefetched) chunks instead of by touch
//     counters, which prefetching would pollute;
//   - the prefetcher is eviction-aware: the touch patterns it replays come
//     from the eviction candidates MHPE selects.
//
// The package also defines the named system Setups (policy + prefetcher
// pairs) that the evaluation compares, and the Section VI-C overhead
// accounting.
package core

import (
	"fmt"

	"github.com/reproductions/cppe/internal/evict"
	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/policy"
	"github.com/reproductions/cppe/internal/prefetch"
)

// Options configure a CPPE instance. The zero value uses the paper's
// parameters (T1=32, T2=40, T3=32, Scheme-2, record-at-untouch>=8).
type Options struct {
	// Scheme is the pattern-buffer deletion scheme (default Scheme2, the
	// better performer in Fig. 7).
	Scheme prefetch.DeletionScheme
	// MHPE overrides individual Algorithm-1 parameters.
	MHPE evict.MHPEOptions
	// PatternMinUntouch is the minimum untouch level for recording a chunk
	// in the pattern buffer (default 8).
	PatternMinUntouch int
}

// Instance is a wired CPPE: hand Policy and Prefetcher to the UVM manager.
type Instance struct {
	Policy     *evict.MHPE
	Prefetcher *prefetch.Pattern
}

// New builds a CPPE instance from the system configuration. Invalid options
// (an unknown deletion scheme) are returned as an error so setup-construction
// failures surface through harness Result.Err.
func New(cfg memdef.Config, opt Options) (*Instance, error) {
	if opt.Scheme == 0 {
		opt.Scheme = prefetch.Scheme2
	}
	if opt.PatternMinUntouch == 0 {
		opt.PatternMinUntouch = cfg.PatternMinUntouch
	}
	mo := opt.MHPE
	if mo.T1 == 0 {
		mo.T1 = cfg.T1
	}
	if mo.T2 == 0 {
		mo.T2 = cfg.T2
	}
	if mo.T3 == 0 {
		mo.T3 = cfg.T3
	}
	if mo.IntervalPages == 0 {
		mo.IntervalPages = cfg.IntervalPages
	}
	pf, err := prefetch.NewPattern(opt.Scheme, opt.PatternMinUntouch)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Policy:     evict.NewMHPE(mo),
		Prefetcher: pf,
	}, nil
}

// entryBytes is the Section VI-C cost of one structure entry: an 8-byte tag
// plus a 4-byte bit set.
const entryBytes = 12

// Overhead is the Section VI-C storage accounting for CPPE's three
// structures (all held in CPU memory by the driver).
type Overhead struct {
	ChainEntries         int
	PatternEntries       int
	WrongEvictionEntries int
}

// TotalEntries sums the three structures.
func (o Overhead) TotalEntries() int {
	return o.ChainEntries + o.PatternEntries + o.WrongEvictionEntries
}

// TotalBytes is entries x 12 B (8 B tag + 4 B bit set).
func (o Overhead) TotalBytes() int { return o.TotalEntries() * entryBytes }

func (o Overhead) String() string {
	return fmt.Sprintf("chain=%d pattern=%d wrongbuf=%d total=%d entries (%.1f KB)",
		o.ChainEntries, o.PatternEntries, o.WrongEvictionEntries,
		o.TotalEntries(), float64(o.TotalBytes())/1024)
}

// Overhead reports the current structure sizes.
func (i *Instance) Overhead() Overhead {
	return Overhead{
		ChainEntries:         i.Policy.ChainLen(),
		PatternEntries:       i.Prefetcher.Len(),
		WrongEvictionEntries: i.Policy.Stats().BufferCap,
	}
}

// Setup names one (eviction policy, prefetcher) combination from the
// evaluation. NewPolicy takes a deterministic seed (only Random uses it).
// Construction errors flow to the harness, which fails the single run's
// Result.Err instead of aborting a whole sweep.
type Setup struct {
	Name string
	// Description says which figure/table the setup appears in.
	Description   string
	NewPolicy     func(cfg memdef.Config, seed int64) (evict.Policy, error)
	NewPrefetcher func(cfg memdef.Config) (prefetch.Prefetcher, error)
}

// FromRegistry builds a Setup whose eviction policy and prefetcher resolve by
// registry name when the harness constructs the run's machine. Unknown names
// surface as policy.ErrUnknownPolicy through the Result.Err path, never as a
// construction panic. The canonical evaluation setups below are all registry
// pairs; only the parameterized design ablations (which bake in override
// values no registry name captures) still construct policies directly.
func FromRegistry(name, description, evictName, pfName string) Setup {
	return Setup{
		Name:        name,
		Description: description,
		NewPolicy: func(cfg memdef.Config, seed int64) (evict.Policy, error) {
			return policy.NewEviction(evictName, policy.Env{Config: cfg, Seed: seed})
		},
		NewPrefetcher: func(cfg memdef.Config) (prefetch.Prefetcher, error) {
			return policy.NewPrefetch(pfName, policy.Env{Config: cfg})
		},
	}
}

// The named setups of the evaluation, as registry (eviction, prefetch) pairs.
var (
	// SetupBaseline is the state-of-the-art software baseline [16]:
	// sequential-local prefetcher + LRU pre-eviction, prefetching naively
	// under oversubscription.
	SetupBaseline = FromRegistry("baseline",
		"LRU + locality prefetch (Ganguly et al. [16])", "lru", "locality")

	// SetupCPPE is the paper's system with deletion Scheme-2.
	SetupCPPE = FromRegistry("cppe",
		"MHPE + pattern-aware prefetch, Scheme-2 (this paper)", "mhpe", "pattern-s2")

	// SetupCPPES1 is CPPE with deletion Scheme-1 (Fig. 7).
	SetupCPPES1 = FromRegistry("cppe-s1",
		"MHPE + pattern-aware prefetch, Scheme-1 (Fig. 7)", "mhpe", "pattern-s1")

	// SetupRandom is Random eviction + locality prefetch (Fig. 3/9).
	SetupRandom = FromRegistry("random",
		"Random eviction + locality prefetch (Fig. 3/9)", "random", "locality")

	// SetupDisableOnFull turns prefetching off once memory fills (Fig. 10).
	SetupDisableOnFull = FromRegistry("disable-on-full",
		"LRU + prefetch disabled when memory full (Fig. 10)", "lru", "disable-on-full")

	// SetupHPE couples the original HPE with the locality prefetcher — the
	// Inefficiency-1 ablation.
	SetupHPE = FromRegistry("hpe",
		"original HPE + locality prefetch (Inefficiency 1 ablation)", "hpe", "locality")

	// SetupTree couples LRU with the tree-based neighborhood prefetcher
	// (extension ablation).
	SetupTree = FromRegistry("tree",
		"LRU + tree-based neighborhood prefetch (ablation)", "lru", "tree")

	// SetupLearned couples the perceptron eviction policy with the paper's
	// pattern-aware prefetcher — the registry's proof that an external,
	// view-driven policy slots into the full evaluation pipeline.
	SetupLearned = FromRegistry("learned",
		"learned perceptron eviction + pattern-aware prefetch, Scheme-2", "learned", "pattern-s2")
)

// SetupTrueLRU is the oracle ablation: LRU over actual GPU-side touch
// recency, which a real driver cannot observe. It bounds how much of the
// driver's visibility handicap MHPE recovers.
var SetupTrueLRU = FromRegistry("true-lru",
	"oracle touch-recency LRU + locality prefetch (visibility ablation)", "true-lru", "locality")

// SetupCPPEInterval is CPPE with an overridden interval length in migrated
// pages (the interval-length design ablation; the paper fixes 64).
func SetupCPPEInterval(pages int) Setup {
	return Setup{
		Name:        fmt.Sprintf("cppe-int-%d", pages),
		Description: "CPPE with overridden interval length (design ablation)",
		NewPolicy: func(cfg memdef.Config, _ int64) (evict.Policy, error) {
			return evict.NewMHPE(evict.MHPEOptions{
				T1: cfg.T1, T2: cfg.T2, T3: cfg.T3,
				IntervalPages: pages,
			}), nil
		},
		NewPrefetcher: func(cfg memdef.Config) (prefetch.Prefetcher, error) {
			return prefetch.NewPattern(prefetch.Scheme2, cfg.PatternMinUntouch)
		},
	}
}

// SetupCPPEBuffer is CPPE with a fixed wrong-eviction buffer capacity instead
// of the chain-length-scaled rule (the buffer-sizing design ablation).
func SetupCPPEBuffer(capacity int) Setup {
	return Setup{
		Name:        fmt.Sprintf("cppe-buf-%d", capacity),
		Description: "CPPE with fixed wrong-eviction buffer (design ablation)",
		NewPolicy: func(cfg memdef.Config, _ int64) (evict.Policy, error) {
			return evict.NewMHPE(evict.MHPEOptions{
				T1: cfg.T1, T2: cfg.T2, T3: cfg.T3,
				IntervalPages:  cfg.IntervalPages,
				FixedBufferCap: capacity,
			}), nil
		},
		NewPrefetcher: func(cfg memdef.Config) (prefetch.Prefetcher, error) {
			return prefetch.NewPattern(prefetch.Scheme2, cfg.PatternMinUntouch)
		},
	}
}

// SetupCPPEFwd is CPPE with a fixed initial forward distance instead of the
// chainLen/100 rule (the initialization design ablation).
func SetupCPPEFwd(initial int) Setup {
	return Setup{
		Name:        fmt.Sprintf("cppe-fwd-%d", initial),
		Description: "CPPE with fixed initial forward distance (design ablation)",
		NewPolicy: func(cfg memdef.Config, _ int64) (evict.Policy, error) {
			return evict.NewMHPE(evict.MHPEOptions{
				T1: cfg.T1, T2: cfg.T2, T3: cfg.T3,
				IntervalPages:          cfg.IntervalPages,
				InitialForwardDistance: initial,
			}), nil
		},
		NewPrefetcher: func(cfg memdef.Config) (prefetch.Prefetcher, error) {
			return prefetch.NewPattern(prefetch.Scheme2, cfg.PatternMinUntouch)
		},
	}
}

// SetupReservedLRU returns reserved LRU with the given reserved fraction +
// locality prefetch (LRU-10% / LRU-20% in Fig. 3/9). The canonical fractions
// resolve through the registry ("lru-10%", "lru-20%"); other fractions have
// no registry name and construct the policy directly.
func SetupReservedLRU(fraction float64) Setup {
	name := fmt.Sprintf("lru-%d%%", int(fraction*100+0.5))
	const desc = "reserved LRU + locality prefetch (Fig. 3/9)"
	if _, err := policy.Lookup(policy.KindEviction, name); err == nil {
		return FromRegistry(name, desc, name, "locality")
	}
	return Setup{
		Name:        name,
		Description: desc,
		NewPolicy: func(_ memdef.Config, _ int64) (evict.Policy, error) {
			return evict.NewReservedLRU(fraction), nil
		},
		NewPrefetcher: func(memdef.Config) (prefetch.Prefetcher, error) {
			return prefetch.NewLocality(), nil
		},
	}
}

// SetupMHPEProbe runs MHPE frozen at MRU with the initial forward distance —
// the measurement mode behind Tables III/IV.
func SetupMHPEProbe() Setup {
	return Setup{
		Name:        "mhpe-probe",
		Description: "MHPE probe mode (MRU frozen) for Tables III/IV",
		NewPolicy: func(cfg memdef.Config, _ int64) (evict.Policy, error) {
			return evict.NewMHPE(evict.MHPEOptions{
				T1: cfg.T1, T2: cfg.T2, T3: cfg.T3,
				IntervalPages: cfg.IntervalPages,
				DisableSwitch: true,
			}), nil
		},
		NewPrefetcher: func(memdef.Config) (prefetch.Prefetcher, error) {
			return prefetch.NewLocality(), nil
		},
	}
}

// SetupCPPET3 is CPPE with an overridden forward-distance limit T3 (the
// Section VI-A sensitivity sweep).
func SetupCPPET3(t3 int) Setup {
	return Setup{
		Name:        fmt.Sprintf("cppe-t3-%d", t3),
		Description: "CPPE with forward-distance limit override (T3 sweep)",
		NewPolicy: func(cfg memdef.Config, _ int64) (evict.Policy, error) {
			return evict.NewMHPE(evict.MHPEOptions{
				T1: cfg.T1, T2: cfg.T2, T3: t3,
				IntervalPages: cfg.IntervalPages,
			}), nil
		},
		NewPrefetcher: func(cfg memdef.Config) (prefetch.Prefetcher, error) {
			return prefetch.NewPattern(prefetch.Scheme2, cfg.PatternMinUntouch)
		},
	}
}
