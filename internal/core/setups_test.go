package core

import (
	"testing"

	"github.com/reproductions/cppe/internal/evict"
	"github.com/reproductions/cppe/internal/memdef"
)

// mustPolicy unwraps a Setup policy constructor in tests.
func mustPolicy(t *testing.T, s Setup, cfg memdef.Config, seed int64) evict.Policy {
	t.Helper()
	p, err := s.NewPolicy(cfg, seed)
	if err != nil {
		t.Fatalf("%s: NewPolicy: %v", s.Name, err)
	}
	return p
}

func drive(p evict.Policy, chunks int) {
	for i := 0; i < chunks; i++ {
		p.OnMigrate(memdef.ChunkID(i), memdef.FullBitmap)
	}
	p.SelectVictim(func(memdef.ChunkID) bool { return false })
}

func TestSetupCPPEIntervalOverride(t *testing.T) {
	cfg := memdef.DefaultConfig()
	// Interval 32 pages = 2 chunk migrations per interval: after 8 chunks
	// the policy has seen 4 intervals (vs 2 at the default 64).
	pol := mustPolicy(t, SetupCPPEInterval(32), cfg, 0).(*evict.MHPE)
	drive(pol, 12)
	// Interval count is internal; verify via partitioning: with interval 32
	// the old partition after 12 migrations is larger than with 128.
	pol128 := mustPolicy(t, SetupCPPEInterval(128), cfg, 0).(*evict.MHPE)
	drive(pol128, 12)
	v32, _ := pol.SelectVictim(func(memdef.ChunkID) bool { return false })
	v128, ok := pol128.SelectVictim(func(memdef.ChunkID) bool { return false })
	if !ok {
		t.Fatal("no victim at interval 128")
	}
	if v32 == v128 {
		t.Logf("victims coincide (%v); acceptable but interval must differ internally", v32)
	}
}

func TestSetupCPPEBufferOverride(t *testing.T) {
	cfg := memdef.DefaultConfig()
	pol := mustPolicy(t, SetupCPPEBuffer(128), cfg, 0).(*evict.MHPE)
	drive(pol, 64) // scaled rule would give max(8, 8*64/64) = 8
	if got := pol.Stats().BufferCap; got != 128 {
		t.Fatalf("buffer cap = %d, want 128", got)
	}
}

func TestSetupCPPEFwdOverride(t *testing.T) {
	cfg := memdef.DefaultConfig()
	pol := mustPolicy(t, SetupCPPEFwd(7), cfg, 0).(*evict.MHPE)
	drive(pol, 300) // chainLen/100 rule would give 3
	if got := pol.ForwardDistance(); got != 7 {
		t.Fatalf("forward = %d, want 7", got)
	}
}

func TestSetupTrueLRUConstructs(t *testing.T) {
	cfg := memdef.DefaultConfig()
	pol := mustPolicy(t, SetupTrueLRU, cfg, 0)
	if pol.Name() != "true-lru" {
		t.Fatalf("name = %q", pol.Name())
	}
	pf, err := SetupTrueLRU.NewPrefetcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Name() != "locality" {
		t.Fatal("true-lru must pair with the locality prefetcher")
	}
}

func TestVariantSetupNames(t *testing.T) {
	if SetupCPPEInterval(32).Name != "cppe-int-32" {
		t.Fatal("interval name")
	}
	if SetupCPPEBuffer(8).Name != "cppe-buf-8" {
		t.Fatal("buffer name")
	}
	if SetupCPPEFwd(2).Name != "cppe-fwd-2" {
		t.Fatal("fwd name")
	}
}
