package core

import (
	"testing"

	"github.com/reproductions/cppe/internal/evict"
	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/prefetch"
)

func TestNewDefaultsFromConfig(t *testing.T) {
	cfg := memdef.DefaultConfig()
	inst, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Policy == nil || inst.Prefetcher == nil {
		t.Fatal("nil components")
	}
	if inst.Prefetcher.Scheme() != prefetch.Scheme2 {
		t.Fatal("default scheme must be Scheme-2")
	}
	if inst.Policy.Strategy() != evict.StrategyMRU {
		t.Fatal("MHPE must start at MRU")
	}
}

func TestNewRespectsOverrides(t *testing.T) {
	cfg := memdef.DefaultConfig()
	inst, err := New(cfg, Options{
		Scheme: prefetch.Scheme1,
		MHPE:   evict.MHPEOptions{T3: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Prefetcher.Scheme() != prefetch.Scheme1 {
		t.Fatal("scheme override ignored")
	}
}

func TestOverheadAccounting(t *testing.T) {
	cfg := memdef.DefaultConfig()
	inst, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the policy a little: migrate 130 chunks, trigger memory full.
	for i := 0; i < 130; i++ {
		inst.Policy.OnMigrate(memdef.ChunkID(i), memdef.FullBitmap)
	}
	inst.Policy.SelectVictim(func(memdef.ChunkID) bool { return false })
	inst.Prefetcher.OnEvict(0, memdef.PageBitmap(1), 15)

	o := inst.Overhead()
	if o.ChainEntries != 130 {
		t.Fatalf("chain entries = %d", o.ChainEntries)
	}
	if o.PatternEntries != 1 {
		t.Fatalf("pattern entries = %d", o.PatternEntries)
	}
	if o.WrongEvictionEntries != 16 { // 130/64*8 = 16
		t.Fatalf("wrong-eviction entries = %d", o.WrongEvictionEntries)
	}
	if o.TotalEntries() != 147 {
		t.Fatalf("total = %d", o.TotalEntries())
	}
	if o.TotalBytes() != 147*12 {
		t.Fatalf("bytes = %d", o.TotalBytes())
	}
	if o.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSetupsConstructDistinctInstances(t *testing.T) {
	cfg := memdef.DefaultConfig()
	setups := []Setup{
		SetupBaseline, SetupCPPE, SetupCPPES1, SetupRandom,
		SetupDisableOnFull, SetupHPE, SetupTree,
		SetupReservedLRU(0.10), SetupReservedLRU(0.20),
		SetupMHPEProbe(), SetupCPPET3(16),
	}
	names := map[string]bool{}
	for _, s := range setups {
		if s.Name == "" || names[s.Name] {
			t.Fatalf("bad/duplicate setup name %q", s.Name)
		}
		names[s.Name] = true
		p1, err1 := s.NewPolicy(cfg, 1)
		p2, err2 := s.NewPolicy(cfg, 1)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: policy error: %v %v", s.Name, err1, err2)
		}
		if p1 == nil || p2 == nil {
			t.Fatalf("%s: nil policy", s.Name)
		}
		if p1 == p2 {
			t.Fatalf("%s: policy factory returned shared instance", s.Name)
		}
		pf, err := s.NewPrefetcher(cfg)
		if err != nil {
			t.Fatalf("%s: prefetcher error: %v", s.Name, err)
		}
		if pf == nil {
			t.Fatalf("%s: nil prefetcher", s.Name)
		}
	}
}

func TestSetupNames(t *testing.T) {
	if SetupBaseline.Name != "baseline" || SetupCPPE.Name != "cppe" {
		t.Fatal("canonical names changed")
	}
	if got := SetupReservedLRU(0.20).Name; got != "lru-20%" {
		t.Fatalf("reserved name = %q", got)
	}
	if got := SetupCPPET3(24).Name; got != "cppe-t3-24" {
		t.Fatalf("t3 name = %q", got)
	}
}

func TestProbeSetupFrozenAtMRU(t *testing.T) {
	cfg := memdef.DefaultConfig()
	p, err := SetupMHPEProbe().NewPolicy(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	pol := p.(*evict.MHPE)
	for i := 0; i < 12; i++ {
		pol.OnMigrate(memdef.ChunkID(i), memdef.FullBitmap)
	}
	pol.SelectVictim(func(memdef.ChunkID) bool { return false })
	for i := 0; i < 4; i++ {
		pol.OnEvicted(memdef.ChunkID(100+i), 15)
	}
	for i := 0; i < 4; i++ {
		pol.OnMigrate(memdef.ChunkID(200+i), memdef.FullBitmap)
	}
	if pol.Strategy() != evict.StrategyMRU {
		t.Fatal("probe setup switched to LRU")
	}
}
