// Package snapshot implements the deterministic binary checkpoint format for
// the simulator: a versioned, CRC-checksummed frame around a sequence of
// fixed-width little-endian fields written by per-subsystem encoders
// (DESIGN.md §10).
//
// The format is deliberately primitive: no reflection, no varints, no
// self-describing schema. Every encoder writes its fields in a fixed order and
// the matching decoder reads them back in the same order; section marks
// (Mark/ExpectMark) catch encoder/decoder drift early with a structured error
// instead of silently misinterpreting downstream bytes. Both Writer and
// Reader are sticky-error: after the first failure every subsequent call is a
// no-op, so encoders and decoders can run straight-line without per-field
// error checks and inspect Err once at the end.
//
// Frame layout:
//
//	[0:4)   magic "CPPE"
//	[4:6)   format version (u16 LE)
//	[6:14)  payload length (u64 LE)
//	[14:n)  payload
//	[n:n+4) CRC-32 (IEEE) of bytes [0:n)
//
// Decoding never panics on malformed input: truncations, bit flips, bad
// counts and version skew all surface as wrapped ErrTruncated / ErrChecksum /
// ErrVersion / ErrBadMagic / ErrCorrupt values.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the current checkpoint format version. Any change to any
// subsystem encoder must bump it; decoders reject every other version.
const Version uint16 = 2

var magic = [4]byte{'C', 'P', 'P', 'E'}

// Structured decode failures. All errors returned by Open/Reader wrap one of
// these, so callers can classify failures with errors.Is.
var (
	// ErrBadMagic means the file does not start with the checkpoint magic.
	ErrBadMagic = errors.New("snapshot: bad magic (not a checkpoint file)")
	// ErrVersion means the checkpoint was written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated means the input ended before the declared payload.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrChecksum means the CRC-32 over the frame did not match.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt means the payload was framed correctly but its contents are
	// structurally invalid (bad section mark, implausible count, trailing
	// bytes, or a field value a decoder rejected).
	ErrCorrupt = errors.New("snapshot: corrupt payload")
)

// Writer accumulates a checkpoint payload. The zero value is ready to use.
// All Put methods are sticky-error no-ops after the first failure.
type Writer struct {
	buf []byte
	err error
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Err returns the first error recorded by any Put or Fail call.
func (w *Writer) Err() error { return w.err }

// Fail records err (if the writer has not already failed) and makes all
// subsequent Put calls no-ops. Encoders use it to refuse unserializable
// states (for example, an in-flight event with no tag).
func (w *Writer) Fail(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Len returns the current payload length in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// PutU64 appends v as 8 little-endian bytes.
func (w *Writer) PutU64(v uint64) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// PutU32 appends v as 4 little-endian bytes.
func (w *Writer) PutU32(v uint32) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// PutU16 appends v as 2 little-endian bytes.
func (w *Writer) PutU16(v uint16) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// PutU8 appends one byte.
func (w *Writer) PutU8(v uint8) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, v)
}

// PutBool appends one byte, 1 for true.
func (w *Writer) PutBool(v bool) {
	if v {
		w.PutU8(1)
	} else {
		w.PutU8(0)
	}
}

// PutInt appends v as a u64 two's-complement value.
func (w *Writer) PutInt(v int) { w.PutU64(uint64(int64(v))) }

// PutI64 appends v as a u64 two's-complement value.
func (w *Writer) PutI64(v int64) { w.PutU64(uint64(v)) }

// PutF64 appends the IEEE-754 bit pattern of v.
func (w *Writer) PutF64(v float64) { w.PutU64(math.Float64bits(v)) }

// PutBytes appends a u32 length prefix followed by the raw bytes.
func (w *Writer) PutBytes(b []byte) {
	w.PutU32(uint32(len(b)))
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, b...)
}

// PutString appends s with a u32 length prefix.
func (w *Writer) PutString(s string) {
	w.PutU32(uint32(len(s)))
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, s...)
}

// Mark appends a 4-byte section marker. The matching ExpectMark in the
// decoder verifies encoder and decoder are aligned at section boundaries.
func (w *Writer) Mark(tag string) {
	if w.err != nil {
		return
	}
	var m [4]byte
	copy(m[:], tag)
	w.buf = append(w.buf, m[:]...)
}

// Frame wraps the accumulated payload in magic/version/length/CRC framing and
// returns the complete checkpoint file contents.
func (w *Writer) Frame() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	out := make([]byte, 0, 4+2+8+len(w.buf)+4)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(w.buf)))
	out = append(out, w.buf...)
	sum := crc32.ChecksumIEEE(out)
	out = binary.LittleEndian.AppendUint32(out, sum)
	return out, nil
}

// Reader consumes a checkpoint payload. All Get methods are sticky-error:
// after the first failure they return zero values. Check Err (or use the
// per-section ExpectMark guards) to detect failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// Open validates the magic, version, declared length and CRC of a complete
// checkpoint file and returns a Reader positioned at the start of the
// payload.
func Open(data []byte) (*Reader, error) {
	if len(data) < 4+2+8+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal frame", ErrTruncated, len(data))
	}
	if [4]byte(data[0:4]) != magic {
		return nil, ErrBadMagic
	}
	ver := binary.LittleEndian.Uint16(data[4:6])
	if ver != Version {
		return nil, fmt.Errorf("%w: file version %d, supported version %d", ErrVersion, ver, Version)
	}
	plen := binary.LittleEndian.Uint64(data[6:14])
	if plen > uint64(len(data)) || uint64(len(data)) != 4+2+8+plen+4 {
		return nil, fmt.Errorf("%w: declared payload %d bytes, file has %d", ErrTruncated, plen, len(data))
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: crc %08x, want %08x", ErrChecksum, crc32.ChecksumIEEE(body), want)
	}
	return &Reader{buf: data[14 : 14+plen]}, nil
}

// Err returns the first decode error.
func (r *Reader) Err() error { return r.err }

// Fail records err (if the reader has not already failed).
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Failf records a formatted ErrCorrupt-wrapped error.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}

// Remaining returns the number of unread payload bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Close verifies the payload was consumed exactly and returns the first
// error, if any.
func (r *Reader) Close() error {
	if r.err == nil && r.off != len(r.buf) {
		r.Failf("%d trailing payload bytes", len(r.buf)-r.off)
	}
	return r.err
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.Fail(fmt.Errorf("%w: need %d bytes, %d remain", ErrTruncated, n, r.Remaining()))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// GetU64 reads 8 little-endian bytes.
func (r *Reader) GetU64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// GetU32 reads 4 little-endian bytes.
func (r *Reader) GetU32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// GetU16 reads 2 little-endian bytes.
func (r *Reader) GetU16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// GetU8 reads one byte.
func (r *Reader) GetU8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// GetBool reads one byte and rejects values other than 0 and 1.
func (r *Reader) GetBool() bool {
	v := r.GetU8()
	if v > 1 {
		r.Failf("bool byte %d", v)
		return false
	}
	return v == 1
}

// GetInt reads a u64 and returns it as an int.
func (r *Reader) GetInt() int { return int(int64(r.GetU64())) }

// GetI64 reads a u64 and returns it as an int64.
func (r *Reader) GetI64() int64 { return int64(r.GetU64()) }

// GetF64 reads an IEEE-754 bit pattern.
func (r *Reader) GetF64() float64 { return math.Float64frombits(r.GetU64()) }

// GetBytes reads a u32 length prefix and that many bytes. The returned slice
// aliases the checkpoint buffer; copy it if it must outlive the Reader.
func (r *Reader) GetBytes() []byte {
	n := int(r.GetU32())
	if r.err != nil {
		return nil
	}
	if n > r.Remaining() {
		r.Fail(fmt.Errorf("%w: byte field of %d bytes, %d remain", ErrTruncated, n, r.Remaining()))
		return nil
	}
	return r.take(n)
}

// GetString reads a u32 length prefix and that many bytes as a string.
func (r *Reader) GetString() string { return string(r.GetBytes()) }

// ExpectMark consumes a 4-byte section marker and fails with ErrCorrupt if it
// does not match tag.
func (r *Reader) ExpectMark(tag string) {
	var want [4]byte
	copy(want[:], tag)
	b := r.take(4)
	if b == nil {
		return
	}
	if [4]byte(b) != want {
		r.Failf("section mark %q, want %q", b, want[:])
	}
}

// GetCount reads a u64 element count and rejects counts that cannot possibly
// fit in the remaining payload given a minimum encoded size per element. This
// bounds allocations when decoding corrupted or adversarial input.
func (r *Reader) GetCount(minBytesPerElem int) int {
	n := r.GetU64()
	if r.err != nil {
		return 0
	}
	if minBytesPerElem < 1 {
		minBytesPerElem = 1
	}
	if n > uint64(r.Remaining()/minBytesPerElem) {
		r.Failf("count %d exceeds remaining payload (%d bytes, ≥%d per element)", n, r.Remaining(), minBytesPerElem)
		return 0
	}
	return int(n)
}
