package snapshot

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func frame(t *testing.T, build func(w *Writer)) []byte {
	t.Helper()
	w := NewWriter(64)
	build(w)
	data, err := w.Frame()
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	return data
}

func TestRoundTripAllFieldTypes(t *testing.T) {
	data := frame(t, func(w *Writer) {
		w.Mark("TEST")
		w.PutU64(0xdeadbeefcafef00d)
		w.PutU32(0x12345678)
		w.PutU16(0xabcd)
		w.PutU8(0x42)
		w.PutBool(true)
		w.PutBool(false)
		w.PutInt(-12345)
		w.PutI64(math.MinInt64)
		w.PutF64(3.14159)
		w.PutF64(math.Inf(-1))
		w.PutBytes([]byte{1, 2, 3})
		w.PutBytes(nil)
		w.PutString("hello")
	})
	r, err := Open(data)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	r.ExpectMark("TEST")
	if v := r.GetU64(); v != 0xdeadbeefcafef00d {
		t.Errorf("u64 = %#x", v)
	}
	if v := r.GetU32(); v != 0x12345678 {
		t.Errorf("u32 = %#x", v)
	}
	if v := r.GetU16(); v != 0xabcd {
		t.Errorf("u16 = %#x", v)
	}
	if v := r.GetU8(); v != 0x42 {
		t.Errorf("u8 = %#x", v)
	}
	if !r.GetBool() || r.GetBool() {
		t.Error("bools did not round-trip")
	}
	if v := r.GetInt(); v != -12345 {
		t.Errorf("int = %d", v)
	}
	if v := r.GetI64(); v != math.MinInt64 {
		t.Errorf("i64 = %d", v)
	}
	if v := r.GetF64(); v != 3.14159 {
		t.Errorf("f64 = %v", v)
	}
	if v := r.GetF64(); !math.IsInf(v, -1) {
		t.Errorf("-inf = %v", v)
	}
	if b := r.GetBytes(); string(b) != "\x01\x02\x03" {
		t.Errorf("bytes = %v", b)
	}
	if b := r.GetBytes(); len(b) != 0 {
		t.Errorf("empty bytes = %v", b)
	}
	if s := r.GetString(); s != "hello" {
		t.Errorf("string = %q", s)
	}
	if err := r.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestOpenRejectsFrameDamage(t *testing.T) {
	data := frame(t, func(w *Writer) { w.PutU64(7) })
	tests := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(d []byte) []byte { return nil }, ErrTruncated},
		{"short", func(d []byte) []byte { return d[:10] }, ErrTruncated},
		{"bad-magic", func(d []byte) []byte { d[0] = 'X'; return d }, ErrBadMagic},
		{"bad-version", func(d []byte) []byte { d[4] = 99; return d }, ErrVersion},
		{"length-overrun", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[6:14], 1<<40)
			return d
		}, ErrTruncated},
		{"length-short", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[6:14], 1)
			return d
		}, ErrTruncated},
		{"payload-flip", func(d []byte) []byte { d[14] ^= 0xff; return d }, ErrChecksum},
		{"crc-flip", func(d []byte) []byte { d[len(d)-1] ^= 0xff; return d }, ErrChecksum},
		{"truncated-payload", func(d []byte) []byte { return d[:len(d)-5] }, ErrTruncated},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), data...))
			if _, err := Open(mut); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(0)
	w.PutU64(1)
	boom := errors.New("boom")
	w.Fail(boom)
	w.PutU64(2)
	w.Mark("MORE")
	w.Fail(errors.New("second error must not displace the first"))
	if w.Err() != boom {
		t.Errorf("err = %v", w.Err())
	}
	if _, err := w.Frame(); err != boom {
		t.Errorf("frame err = %v", err)
	}
	if w.Len() != 8 {
		t.Errorf("writes after failure extended the payload to %d bytes", w.Len())
	}
}

func TestReaderStickyAfterTruncation(t *testing.T) {
	data := frame(t, func(w *Writer) { w.PutU32(5) })
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.GetU64(); v != 0 { // needs 8, payload has 4
		t.Errorf("truncated read returned %d", v)
	}
	first := r.Err()
	if !errors.Is(first, ErrTruncated) {
		t.Fatalf("err = %v", first)
	}
	r.GetU64()
	r.ExpectMark("XXXX")
	if r.Err() != first {
		t.Errorf("later failure displaced the first: %v", r.Err())
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	data := frame(t, func(w *Writer) { w.PutU64(1); w.PutU64(2) })
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	r.GetU64()
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("close with trailing bytes: %v", err)
	}
}

func TestGetBoolRejectsJunk(t *testing.T) {
	data := frame(t, func(w *Writer) { w.PutU8(2) })
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	r.GetBool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("bool byte 2: %v", r.Err())
	}
}

func TestExpectMarkMismatch(t *testing.T) {
	data := frame(t, func(w *Writer) { w.Mark("AAAA") })
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	r.ExpectMark("BBBB")
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("mark mismatch: %v", r.Err())
	}
}

func TestGetCountBoundsAllocations(t *testing.T) {
	data := frame(t, func(w *Writer) {
		w.PutU64(1 << 60) // implausible count
	})
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.GetCount(8); n != 0 {
		t.Errorf("count = %d", n)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("err = %v", r.Err())
	}

	// A plausible count passes.
	data = frame(t, func(w *Writer) {
		w.PutU64(2)
		w.PutU64(10)
		w.PutU64(20)
	})
	r, err = Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.GetCount(8); n != 2 {
		t.Errorf("count = %d (err %v)", n, r.Err())
	}
}

func TestGetBytesTruncation(t *testing.T) {
	data := frame(t, func(w *Writer) {
		w.PutU32(1000) // length prefix far beyond the payload
		w.PutU8(1)
	})
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if b := r.GetBytes(); b != nil {
		t.Errorf("bytes = %v", b)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("err = %v", r.Err())
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	data := frame(t, func(w *Writer) {})
	r, err := Open(data)
	if err != nil {
		t.Fatalf("open empty frame: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
