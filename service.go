package cppe

import (
	"encoding/json"
	"fmt"

	"github.com/reproductions/cppe/internal/harness"
	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/workload"
)

// This file is the service-facing facade surface: everything cppe-serve (and
// any other long-running embedder) needs to treat simulations as durable,
// content-addressed jobs — stable job identity, resume-or-fresh execution
// with park hooks, and canonical result rendering. The simulation core stays
// untouched; these are thin, validated wrappers over the harness layer.

// ErrParked reports that RunResumable stopped at a checkpoint boundary
// because its stop hook asked it to; the checkpoint stays on disk for a later
// RunResumable to continue from.
var ErrParked = harness.ErrParked

// JobID returns the stable content fingerprint of one simulation under this
// session, as 16 lowercase hex digits. It hashes exactly the identity a
// checkpoint envelope pins — the request, the session knobs, the derived
// system configuration JSON, and the workload trace's FNV fingerprint — so
// identical requests (to sessions with identical options) map to the same ID
// and can share one cached Result, while any knob that could change the
// outcome changes the ID.
func (s *Session) JobID(req Request) (string, error) {
	if err := s.validate(req); err != nil {
		return "", err
	}
	id, err := s.h.EnvelopeID(harness.Key{
		Bench: req.Benchmark, Setup: req.Setup, OversubPct: req.Oversubscription,
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", id), nil
}

// RunResumable executes one simulation like RunCheckpointed, with two service
// hooks: a pre-existing valid checkpoint at path is resumed (a stale or
// corrupt leftover is removed and the run starts fresh), and after every
// checkpoint write the stop hook is consulted — returning true parks the run
// at that boundary with ErrParked, leaving the checkpoint behind for the next
// call to continue. Completed runs remove their checkpoint; runs that died
// with a run error keep it so a retry resumes instead of starting over.
func (s *Session) RunResumable(req Request, path string, everyCycles uint64, stop func() bool) (Result, error) {
	return s.RunResumableProgress(req, path, everyCycles, stop, nil)
}

// RunResumableProgress is RunResumable with a streaming hook: after every
// durable checkpoint write the progress callback (nil = none) receives the
// simulated cycle of the checkpoint just written. The hook is called at
// deterministic simulation points, so observing progress cannot perturb the
// result; cppe-serve drives its sweep SSE events off it.
func (s *Session) RunResumableProgress(req Request, path string, everyCycles uint64, stop func() bool, progress func(cycle uint64)) (Result, error) {
	if err := s.validate(req); err != nil {
		return Result{}, err
	}
	k := harness.Key{Bench: req.Benchmark, Setup: req.Setup, OversubPct: req.Oversubscription}
	var hook func(harness.Progress)
	if progress != nil {
		hook = func(p harness.Progress) { progress(uint64(p.Cycle)) }
	}
	r, err := s.h.RunResumableProgress(k, path, memdef.Cycle(everyCycles), stop, hook)
	if err != nil {
		return Result{}, err
	}
	return fromHarness(req, r), nil
}

// ResultJSON renders r exactly as `cppe-sim -json` prints it: indented JSON
// with the run error flattened to its message, terminated by one newline.
// Cached service results rendered with this function are byte-identical to
// the CLI's output for the same configuration and seed — the property the
// serve-smoke CI job diffs.
func ResultJSON(r Result) ([]byte, error) {
	// Err is an error interface value, which encoding/json renders as an
	// opaque {}; shadow it with its message so results round-trip through
	// scripts and diff byte-for-byte across runs.
	out := struct {
		Result
		Err string `json:",omitempty"`
	}{Result: r}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

// validate rejects malformed requests, with one message per field (shared by
// Run, RunCheckpointed, JobID, and RunResumable).
func (s *Session) validate(req Request) error {
	if _, ok := workload.ByAbbr(req.Benchmark); !ok {
		return fmt.Errorf("cppe: unknown benchmark %q (see Benchmarks())", req.Benchmark)
	}
	if _, err := s.h.ResolveSetup(req.Setup); err != nil {
		// Typed: errors.Is(err, ErrUnknownPolicy) for a bad "ev+pf" half.
		return fmt.Errorf("cppe: %w (see Setups, EvictionPolicies, Prefetchers)", err)
	}
	if req.Oversubscription < 0 || req.Oversubscription > 100 {
		return fmt.Errorf("cppe: oversubscription %d%% out of [0,100]", req.Oversubscription)
	}
	return nil
}
