module github.com/reproductions/cppe

go 1.22
