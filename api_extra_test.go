package cppe

import (
	"bytes"
	"encoding/csv"
	"os/exec"
	"strings"
	"testing"

	"github.com/reproductions/cppe/internal/trace"
	"github.com/reproductions/cppe/internal/workload"
)

func TestRunTraceFromRoundTrip(t *testing.T) {
	// Serialize a generated workload and replay it; counters must be sane
	// and deterministic across replays.
	b, _ := workload.ByAbbr("STN")
	wtr := b.Generate(workload.Options{Scale: 0.05, Warps: 16})
	var buf bytes.Buffer
	if err := trace.Write(&buf, &trace.Trace{FootprintPages: wtr.FootprintPages, Warps: wtr.Warps}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	s := NewSession(Options{Scale: 0.05, Warps: 16})
	r1, err := s.RunTraceFrom(bytes.NewReader(raw), SetupCPPE, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accesses != uint64(wtr.Accesses) || r1.Cycles == 0 {
		t.Fatalf("replay result = %+v", r1)
	}
	r2, err := s.RunTraceFrom(bytes.NewReader(raw), SetupCPPE, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("trace replay nondeterministic")
	}
	// And the replay must match the directly-generated simulation.
	direct := s.MustRun(Request{Benchmark: "STN", Setup: SetupCPPE, Oversubscription: 50})
	if direct.Cycles != r1.Cycles {
		t.Fatalf("replayed %d cycles != generated %d", r1.Cycles, direct.Cycles)
	}
}

func TestRunTraceFromValidation(t *testing.T) {
	s := NewSession(Options{Scale: 0.05})
	if _, err := s.RunTraceFrom(strings.NewReader("garbage-not-a-trace"), SetupCPPE, 50); err == nil {
		t.Error("garbage trace accepted")
	}
	if _, err := s.RunTraceFrom(strings.NewReader(""), "nope", 50); err == nil {
		t.Error("unknown setup accepted")
	}
	if _, err := s.RunTraceFrom(strings.NewReader(""), SetupCPPE, 200); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestExperimentCSV(t *testing.T) {
	s := NewSession(Options{Scale: 0.05, Warps: 16})
	var buf bytes.Buffer
	if err := s.ExperimentCSV(ExpTable2, &buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 { // header + 23 workloads
		t.Fatalf("rows = %d", len(rows))
	}
	if err := s.ExperimentCSV("nope", &buf); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestExperimentBarsValidation(t *testing.T) {
	s := NewSession(Options{Scale: 0.05, Warps: 16})
	if _, err := s.ExperimentBars(ExpTable1); err == nil {
		t.Error("bars for a non-figure experiment accepted")
	}
	if _, err := s.ExperimentBars("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestExperimentBarsFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession(Options{Scale: 0.05, Warps: 32})
	out, err := s.ExperimentBars(ExpFig3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "SRD") {
		t.Fatalf("bars missing content:\n%s", out)
	}
	// One chart per setup column.
	if got := strings.Count(out, "== Fig. 3"); got != 3 {
		t.Fatalf("charts = %d, want 3", got)
	}
}

// TestCommandsBuild ensures every cmd and example compiles as a main package.
func TestCommandsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	cmd := exec.Command("go", "build", "./cmd/...", "./examples/...")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}
}

func TestNewSessionWithSystem(t *testing.T) {
	s, err := NewSessionWithSystem(Options{Scale: 0.05, Warps: 16}, []byte(`{"PCIeGBs": 64}`))
	if err != nil {
		t.Fatal(err)
	}
	fast := s.MustRun(Request{Benchmark: "STN", Setup: SetupBaseline, Oversubscription: 50})
	slow := NewSession(Options{Scale: 0.05, Warps: 16}).
		MustRun(Request{Benchmark: "STN", Setup: SetupBaseline, Oversubscription: 50})
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("4x link bandwidth did not speed things up: %d vs %d", fast.Cycles, slow.Cycles)
	}
	if _, err := NewSessionWithSystem(Options{}, []byte(`{"NumSMs": -1}`)); err == nil {
		t.Error("invalid system config accepted")
	}
}

func TestDefaultSystemJSON(t *testing.T) {
	data := DefaultSystemJSON()
	if !strings.Contains(string(data), "\"NumSMs\": 28") {
		t.Fatalf("json = %s", data)
	}
	// Must round-trip through NewSessionWithSystem unchanged.
	if _, err := NewSessionWithSystem(Options{}, data); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	s := NewSession(Options{Scale: 0.05, Warps: 16})
	out, err := s.Describe(Request{Benchmark: "STN", Setup: SetupCPPE, Oversubscription: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"translation paths", "MHPE trajectory", "pattern buffer", "fault"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Baseline report must not contain policy-specific sections.
	out, err = s.Describe(Request{Benchmark: "STN", Setup: SetupBaseline, Oversubscription: 50})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "MHPE trajectory") {
		t.Error("baseline report contains MHPE section")
	}
	if _, err := s.Describe(Request{Benchmark: "NOPE", Setup: SetupCPPE}); err == nil {
		t.Error("bad request accepted")
	}
}
