package cppe

import (
	"errors"
	"strings"
	"testing"
)

// fastSession returns a shared small-scale session for API tests.
var apiSess = NewSession(Options{Scale: 0.05, Warps: 32})

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 23 {
		t.Fatalf("benchmarks = %d, want 23", len(bs))
	}
	if bs[0] != "HOT" || bs[len(bs)-1] != "HYB" {
		t.Fatalf("order = %v", bs)
	}
}

func TestSetupsResolvable(t *testing.T) {
	for _, su := range Setups() {
		if _, ok := apiSess.h.Setup(su); !ok {
			t.Errorf("setup %q not registered", su)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := apiSess.Run(Request{Benchmark: "NOPE", Setup: SetupCPPE, Oversubscription: 50}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := apiSess.Run(Request{Benchmark: "SRD", Setup: "nope", Oversubscription: 50}); err == nil {
		t.Error("unknown setup accepted")
	}
	if _, err := apiSess.Run(Request{Benchmark: "SRD", Setup: SetupCPPE, Oversubscription: 101}); err == nil {
		t.Error("bad rate accepted")
	}
}

// TestRunUnknownPolicyTyped: the public API classifies a dynamic
// "<eviction>+<prefetcher>" setup with an unknown half as ErrUnknownPolicy —
// the error cppe-sim turns into a message plus exit status 1, never a panic.
func TestRunUnknownPolicyTyped(t *testing.T) {
	for _, setup := range []string{"nosuch+locality", "mhpe+nosuch"} {
		_, err := apiSess.Run(Request{Benchmark: "SRD", Setup: setup, Oversubscription: 50})
		if !errors.Is(err, ErrUnknownPolicy) {
			t.Errorf("Run(setup=%q) err = %v, want errors.Is(ErrUnknownPolicy)", setup, err)
		}
	}
	// A valid registered pair is accepted by validation.
	if _, err := apiSess.Run(Request{Benchmark: "STN", Setup: "true-lru+none", Oversubscription: 50}); err != nil {
		t.Errorf("valid dynamic pair rejected: %v", err)
	}
}

func TestRunAndSpeedup(t *testing.T) {
	req := Request{Benchmark: "STN", Setup: SetupCPPE, Oversubscription: 50}
	r, err := apiSess.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Accesses == 0 || r.FaultEvents == 0 {
		t.Fatalf("suspicious result: %+v", r)
	}
	if r.CapacityPages >= r.FootprintPages {
		t.Fatalf("no oversubscription: capacity %d >= footprint %d", r.CapacityPages, r.FootprintPages)
	}
	base := apiSess.MustRun(Request{Benchmark: "STN", Setup: SetupBaseline, Oversubscription: 50})
	sp := Speedup(base, r)
	if sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
	// Cached: second run must be identical.
	r2 := apiSess.MustRun(req)
	if r2.Cycles != r.Cycles {
		t.Fatal("cache returned different result")
	}
}

func TestUnlimitedMemoryNeverEvicts(t *testing.T) {
	r := apiSess.MustRun(Request{Benchmark: "HOT", Setup: SetupBaseline, Oversubscription: 0})
	if r.EvictedPages != 0 {
		t.Fatalf("evictions with unlimited memory: %d", r.EvictedPages)
	}
	if r.CapacityPages != 0 {
		t.Fatalf("capacity = %d, want 0 (unlimited)", r.CapacityPages)
	}
}

func TestMustRunPanicsOnBadRequest(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRun did not panic")
		}
	}()
	apiSess.MustRun(Request{Benchmark: "NOPE", Setup: SetupCPPE})
}

func TestExperimentUnknown(t *testing.T) {
	if _, err := apiSess.Experiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentStaticTables(t *testing.T) {
	out, err := apiSess.Experiment(ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"28 SMs", "20", "GDDR5", "Page Table Walker"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	out, err = apiSess.Experiment(ExpTable2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hotspot", "HYB", "Thrashing"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestExperimentFig3EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	out, err := apiSess.Experiment(ExpFig3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SRD", "B+T", "GeoMean", "Random"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 3 missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentsListMatchesDispatch(t *testing.T) {
	// Every listed experiment id must dispatch (static ones fully; the
	// dynamic ones are exercised elsewhere, here we only check the ids are
	// known by probing the error path with a prefix check).
	known := map[string]bool{}
	for _, id := range Experiments() {
		known[id] = true
	}
	if len(known) != 22 {
		t.Fatalf("experiments = %d", len(known))
	}
	for _, id := range []string{ExpFig8, ExpOverhead, ExpAblHPE} {
		if !known[id] {
			t.Errorf("missing id %q", id)
		}
	}
}

func TestCachedRunsGrows(t *testing.T) {
	s := NewSession(Options{Scale: 0.05, Warps: 16})
	if s.CachedRuns() != 0 {
		t.Fatal("fresh session has cached runs")
	}
	s.MustRun(Request{Benchmark: "STN", Setup: SetupBaseline, Oversubscription: 50})
	if s.CachedRuns() != 1 {
		t.Fatalf("cached = %d", s.CachedRuns())
	}
}
