// Command cppe-sim runs a single simulation — one benchmark under one
// (eviction policy, prefetcher) setup at one oversubscription rate — and
// prints the detailed counters.
//
// Usage:
//
//	cppe-sim -bench SRD -setup cppe -rate 50
//	cppe-sim -bench NW -setup baseline -rate 75 -scale 0.1
//	cppe-sim -bench SRD -setup cppe -rate 50 -checkpoint-every 100000 -checkpoint-file srd.ckpt
//	cppe-sim -resume srd.ckpt -checkpoint-every 100000
//	cppe-sim -bench SRD -setup cppe -rate 50 -json
//	cppe-sim -list
//
// The exit status is 0 only for clean, completed simulations; crashed or
// errored runs (thrash aborts, driver failures, integrity violations) exit 1
// after printing their report.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	cppe "github.com/reproductions/cppe"
)

func main() {
	var (
		bench     = flag.String("bench", "SRD", "Table II benchmark abbreviation")
		setup     = flag.String("setup", "cppe", "system setup (see -list)")
		rate      = flag.Int("rate", 50, "oversubscription percent (75/50; 0 = unlimited memory)")
		scale     = flag.Float64("scale", 0, "workload footprint scale (default 0.25)")
		warps     = flag.Int("warps", 0, "concurrent access streams (default 64)")
		seed      = flag.Int64("seed", 0, "workload/PRNG seed")
		list      = flag.Bool("list", false, "list benchmarks and setups, then exit")
		trc       = flag.String("trace", "", "simulate a saved trace file (cppe-trace -o) instead of a benchmark")
		detail    = flag.Bool("detail", false, "print the full instrumentation report")
		auditOn   = flag.Bool("audit", false, "enable the simulation integrity auditor (read-only; results unchanged)")
		chaosSeed = flag.Int64("chaos-seed", 0, "arm deterministic fault injection with this seed (0 = off)")
		system    = flag.String("system", "", "JSON file overriding Table-I system parameters (validated before running)")
		ckptEvery = flag.Uint64("checkpoint-every", 0, "write a resumable checkpoint every N simulated cycles (0 = off)")
		ckptFile  = flag.String("checkpoint-file", "", "checkpoint file path (default <bench>_<setup>_<rate>.ckpt)")
		resume    = flag.String("resume", "", "resume from a checkpoint file (its benchmark/setup/rate override the flags)")
		jsonOut   = flag.Bool("json", false, "print the result as JSON (run errors rendered as strings)")
		timeout   = flag.Duration("timeout", 0, "no-progress watchdog: a run whose frontier cycle freezes for this long fails with a structured livelock error and exits 1 (0 = 30s default, negative = off)")
	)
	flag.Parse()

	checkpointing := *ckptEvery > 0 || *ckptFile != "" || *resume != ""
	if checkpointing {
		if *chaosSeed != 0 {
			fmt.Fprintln(os.Stderr, "cppe-sim: fault injection (-chaos-seed) cannot be checkpointed")
			os.Exit(1)
		}
		if *trc != "" {
			fmt.Fprintln(os.Stderr, "cppe-sim: trace runs (-trace) cannot be checkpointed")
			os.Exit(1)
		}
		if *resume == "" && *ckptEvery == 0 {
			fmt.Fprintln(os.Stderr, "cppe-sim: -checkpoint-file needs -checkpoint-every")
			os.Exit(1)
		}
	}

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range cppe.Benchmarks() {
			fmt.Println(" ", b)
		}
		fmt.Println("setups:")
		for _, su := range cppe.Setups() {
			fmt.Println(" ", su)
		}
		fmt.Println("eviction policies (usable as -setup <eviction>+<prefetcher>):")
		for _, name := range cppe.EvictionPolicies() {
			fmt.Printf("  %-16s %s\n", name, cppe.PolicyDescription(cppe.KindEviction, name))
		}
		fmt.Println("prefetchers:")
		for _, name := range cppe.Prefetchers() {
			fmt.Printf("  %-16s %s\n", name, cppe.PolicyDescription(cppe.KindPrefetch, name))
		}
		return
	}

	opt := cppe.Options{
		Scale: *scale, Warps: *warps, Seed: *seed,
		Audit: *auditOn, ChaosSeed: *chaosSeed, Timeout: *timeout,
	}
	var s *cppe.Session
	if *system != "" {
		data, err := os.ReadFile(*system)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-sim:", err)
			os.Exit(1)
		}
		s, err = cppe.NewSessionWithSystem(opt, data)
		if err != nil {
			// Bad override documents fail with one line, before any simulation.
			fmt.Fprintln(os.Stderr, "cppe-sim:", err)
			os.Exit(1)
		}
	} else {
		s = cppe.NewSession(opt)
	}
	t0 := time.Now()
	var r cppe.Result
	var err error
	name := *bench
	switch {
	case *resume != "":
		r, err = s.ResumeCheckpoint(*resume, *ckptEvery)
		if err == nil {
			// The checkpoint names the simulation; reflect it in the report
			// (and in the baseline-speedup lookup below).
			*bench, *setup, *rate = r.Request.Benchmark, r.Request.Setup, r.Request.Oversubscription
			name = *bench
		}
	case *ckptEvery > 0:
		path := *ckptFile
		if path == "" {
			path = fmt.Sprintf("%s_%s_%d.ckpt", *bench, *setup, *rate)
		}
		r, err = s.RunCheckpointed(cppe.Request{Benchmark: *bench, Setup: *setup, Oversubscription: *rate}, path, *ckptEvery)
	case *trc != "":
		var f *os.File
		if f, err = os.Open(*trc); err == nil {
			r, err = s.RunTraceFrom(f, *setup, *rate)
			f.Close()
		}
		name = *trc
	default:
		r, err = s.Run(cppe.Request{Benchmark: *bench, Setup: *setup, Oversubscription: *rate})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppe-sim:", err)
		os.Exit(1)
	}
	elapsed := time.Since(t0)

	// A crashed or errored simulation still prints its report, then exits
	// nonzero so scripts and CI can tell a clean run from a failed one.
	exitCode := 0
	if r.Crashed || r.Err != nil {
		exitCode = 1
	}

	if *jsonOut {
		// cppe.ResultJSON is the one canonical rendering: cppe-serve stores
		// and serves the same bytes, so CLI and service output stay diffable.
		enc, jerr := cppe.ResultJSON(r)
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "cppe-sim:", jerr)
			os.Exit(1)
		}
		os.Stdout.Write(enc)
		os.Exit(exitCode)
	}

	if *detail && *trc == "" {
		out, derr := s.Describe(cppe.Request{Benchmark: *bench, Setup: *setup, Oversubscription: *rate})
		if derr != nil {
			fmt.Fprintln(os.Stderr, "cppe-sim:", derr)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(simulated in %v)\n", elapsed.Round(time.Millisecond))
		os.Exit(exitCode)
	}

	fmt.Printf("benchmark        %s\n", name)
	fmt.Printf("setup            %s\n", *setup)
	fmt.Printf("oversubscription %d%%\n", *rate)
	fmt.Printf("footprint        %d pages (%d chunks)\n", r.FootprintPages, r.FootprintPages/16)
	fmt.Printf("capacity         %d pages\n", r.CapacityPages)
	fmt.Printf("cycles           %d\n", r.Cycles)
	fmt.Printf("accesses         %d\n", r.Accesses)
	fmt.Printf("fault events     %d\n", r.FaultEvents)
	fmt.Printf("migrated pages   %d\n", r.MigratedPages)
	fmt.Printf("evicted pages    %d\n", r.EvictedPages)
	fmt.Printf("crashed          %v\n", r.Crashed)
	if r.Err != nil {
		fmt.Printf("run error        %v\n", r.Err)
	}
	fmt.Printf("(simulated in %v)\n", elapsed.Round(time.Millisecond))

	// Convenience: if the setup isn't the baseline, also report the speedup
	// against the baseline at the same rate (generated benchmarks only —
	// trace files have no cached baseline to compare with).
	if *trc == "" && *setup != cppe.SetupBaseline {
		base, err := s.Run(cppe.Request{Benchmark: *bench, Setup: cppe.SetupBaseline, Oversubscription: *rate})
		if err == nil {
			if sp := cppe.Speedup(base, r); sp > 0 {
				fmt.Printf("speedup vs baseline: %.2fx\n", sp)
			} else {
				fmt.Printf("speedup vs baseline: X (a run crashed)\n")
			}
		}
	}
	os.Exit(exitCode)
}
