// Command cppe-sim runs a single simulation — one benchmark under one
// (eviction policy, prefetcher) setup at one oversubscription rate — and
// prints the detailed counters.
//
// Usage:
//
//	cppe-sim -bench SRD -setup cppe -rate 50
//	cppe-sim -bench NW -setup baseline -rate 75 -scale 0.1
//	cppe-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	cppe "github.com/reproductions/cppe"
)

func main() {
	var (
		bench     = flag.String("bench", "SRD", "Table II benchmark abbreviation")
		setup     = flag.String("setup", "cppe", "system setup (see -list)")
		rate      = flag.Int("rate", 50, "oversubscription percent (75/50; 0 = unlimited memory)")
		scale     = flag.Float64("scale", 0, "workload footprint scale (default 0.25)")
		warps     = flag.Int("warps", 0, "concurrent access streams (default 64)")
		seed      = flag.Int64("seed", 0, "workload/PRNG seed")
		list      = flag.Bool("list", false, "list benchmarks and setups, then exit")
		trc       = flag.String("trace", "", "simulate a saved trace file (cppe-trace -o) instead of a benchmark")
		detail    = flag.Bool("detail", false, "print the full instrumentation report")
		auditOn   = flag.Bool("audit", false, "enable the simulation integrity auditor (read-only; results unchanged)")
		chaosSeed = flag.Int64("chaos-seed", 0, "arm deterministic fault injection with this seed (0 = off)")
		system    = flag.String("system", "", "JSON file overriding Table-I system parameters (validated before running)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range cppe.Benchmarks() {
			fmt.Println(" ", b)
		}
		fmt.Println("setups:")
		for _, su := range cppe.Setups() {
			fmt.Println(" ", su)
		}
		return
	}

	opt := cppe.Options{
		Scale: *scale, Warps: *warps, Seed: *seed,
		Audit: *auditOn, ChaosSeed: *chaosSeed,
	}
	var s *cppe.Session
	if *system != "" {
		data, err := os.ReadFile(*system)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-sim:", err)
			os.Exit(1)
		}
		s, err = cppe.NewSessionWithSystem(opt, data)
		if err != nil {
			// Bad override documents fail with one line, before any simulation.
			fmt.Fprintln(os.Stderr, "cppe-sim:", err)
			os.Exit(1)
		}
	} else {
		s = cppe.NewSession(opt)
	}
	t0 := time.Now()
	var r cppe.Result
	var err error
	name := *bench
	if *trc != "" {
		var f *os.File
		if f, err = os.Open(*trc); err == nil {
			r, err = s.RunTraceFrom(f, *setup, *rate)
			f.Close()
		}
		name = *trc
	} else {
		r, err = s.Run(cppe.Request{Benchmark: *bench, Setup: *setup, Oversubscription: *rate})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppe-sim:", err)
		os.Exit(1)
	}
	elapsed := time.Since(t0)

	if *detail && *trc == "" {
		out, derr := s.Describe(cppe.Request{Benchmark: *bench, Setup: *setup, Oversubscription: *rate})
		if derr != nil {
			fmt.Fprintln(os.Stderr, "cppe-sim:", derr)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(simulated in %v)\n", elapsed.Round(time.Millisecond))
		return
	}

	fmt.Printf("benchmark        %s\n", name)
	fmt.Printf("setup            %s\n", *setup)
	fmt.Printf("oversubscription %d%%\n", *rate)
	fmt.Printf("footprint        %d pages (%d chunks)\n", r.FootprintPages, r.FootprintPages/16)
	fmt.Printf("capacity         %d pages\n", r.CapacityPages)
	fmt.Printf("cycles           %d\n", r.Cycles)
	fmt.Printf("accesses         %d\n", r.Accesses)
	fmt.Printf("fault events     %d\n", r.FaultEvents)
	fmt.Printf("migrated pages   %d\n", r.MigratedPages)
	fmt.Printf("evicted pages    %d\n", r.EvictedPages)
	fmt.Printf("crashed          %v\n", r.Crashed)
	if r.Err != nil {
		fmt.Printf("run error        %v\n", r.Err)
	}
	fmt.Printf("(simulated in %v)\n", elapsed.Round(time.Millisecond))

	// Convenience: if the setup isn't the baseline, also report the speedup
	// against the baseline at the same rate (generated benchmarks only —
	// trace files have no cached baseline to compare with).
	if *trc == "" && *setup != cppe.SetupBaseline {
		base, err := s.Run(cppe.Request{Benchmark: *bench, Setup: cppe.SetupBaseline, Oversubscription: *rate})
		if err == nil {
			if sp := cppe.Speedup(base, r); sp > 0 {
				fmt.Printf("speedup vs baseline: %.2fx\n", sp)
			} else {
				fmt.Printf("speedup vs baseline: X (a run crashed)\n")
			}
		}
	}
}
