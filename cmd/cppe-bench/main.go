// Command cppe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cppe-bench                     # all experiments, paper order
//	cppe-bench -exp fig8           # one experiment
//	cppe-bench -list               # list experiment ids
//	cppe-bench -scale 0.1 -exp fig3
//
// Output is aligned text; simulation results are cached within one
// invocation, so experiments that share runs (e.g. the Fig. 9 pair) do not
// repeat them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	cppe "github.com/reproductions/cppe"
)

// writeCSV stores one experiment's table as <dir>/<id>.csv.
func writeCSV(s *cppe.Session, dir, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	err = s.ExperimentCSV(id, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (empty = all); see -list")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 0, "workload footprint scale (default 0.25)")
		warps   = flag.Int("warps", 0, "concurrent access streams (default 64)")
		seed    = flag.Int64("seed", 0, "workload/PRNG seed")
		par     = flag.Int("parallel", 0, "concurrent simulations (default GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print per-experiment timing")
		bars    = flag.Bool("bars", false, "render figure experiments as ASCII bar charts")
		csvDir  = flag.String("csv", "", "also write each experiment as CSV into this directory")
		sysCfg  = flag.String("config", "", "JSON file overriding Table-I system parameters")
		dumpCfg = flag.Bool("dump-config", false, "print the default system configuration as JSON and exit")
		check   = flag.Bool("check", false, "run the claims self-check and exit non-zero if any claim fails")
	)
	flag.Parse()

	if *dumpCfg {
		fmt.Printf("%s\n", cppe.DefaultSystemJSON())
		return
	}
	if *list {
		for _, id := range cppe.Experiments() {
			fmt.Println(id)
		}
		return
	}

	opt := cppe.Options{Scale: *scale, Warps: *warps, Seed: *seed, Parallelism: *par}
	var s *cppe.Session
	if *sysCfg != "" {
		data, err := os.ReadFile(*sysCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		s, err = cppe.NewSessionWithSystem(opt, data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
	} else {
		s = cppe.NewSession(opt)
	}

	if *check {
		out, err := s.Experiment(cppe.ExpClaims)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		if strings.Contains(out, "FAIL") {
			fmt.Fprintln(os.Stderr, "cppe-bench: claims self-check FAILED")
			os.Exit(1)
		}
		return
	}

	ids := cppe.Experiments()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		t0 := time.Now()
		var out string
		var err error
		if *bars {
			out, err = s.ExperimentBars(id)
			if err != nil && *exp == "" {
				// In all-experiments mode, fall back to tables for
				// non-figure artifacts.
				out, err = s.Experiment(id)
			}
		} else {
			out, err = s.Experiment(id)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *csvDir != "" {
			if err := writeCSV(s, *csvDir, id); err != nil {
				fmt.Fprintln(os.Stderr, "cppe-bench:", err)
				os.Exit(1)
			}
		}
		if *verbose {
			fmt.Printf("[%s: %v, %d cached simulations]\n\n", id, time.Since(t0).Round(time.Millisecond), s.CachedRuns())
		}
	}
}
