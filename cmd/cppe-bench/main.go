// Command cppe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cppe-bench                     # all experiments, paper order
//	cppe-bench -exp fig8           # one experiment
//	cppe-bench -list               # list experiment ids
//	cppe-bench -scale 0.1 -exp fig3
//	cppe-bench -exp fig8 -json BENCH_engine.json   # machine-readable perf report
//	cppe-bench -exp fig8 -cpuprofile cpu.pprof     # profile the experiment runs
//
// Output is aligned text; simulation results are cached within one
// invocation, so experiments that share runs (e.g. the Fig. 9 pair) do not
// repeat them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	cppe "github.com/reproductions/cppe"
	"github.com/reproductions/cppe/internal/engine"
	"github.com/reproductions/cppe/internal/memdef"
)

// benchResult is one microbenchmark's measurement in the -json report.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// expResult is one experiment's wall time in the -json report. The per-run
// fields amortize the experiment's cost over the simulations it actually
// executed (cached-run deltas): an experiment that reuses cached results
// reports zero new runs and omits them.
type expResult struct {
	ID           string  `json:"id"`
	WallMs       float64 `json:"wall_ms"`
	CachedRuns   int     `json:"cached_runs_after"`
	NewRuns      int     `json:"new_runs"`
	WallMsPerRun float64 `json:"wall_ms_per_run,omitempty"`
	AllocsPerRun uint64  `json:"allocs_per_run,omitempty"`
	BytesPerRun  uint64  `json:"bytes_per_run,omitempty"`
}

// sweepReport is the session's committed sweep-progress totals (see
// stats.SweepTotals): what the lockstep workers folded into the shared
// aggregate, plus how many shard commits it took.
type sweepReport struct {
	Runs          uint64 `json:"runs"`
	Cycles        uint64 `json:"cycles"`
	Accesses      uint64 `json:"accesses"`
	Faults        uint64 `json:"faults"`
	MigratedPages uint64 `json:"migrated_pages"`
	EvictedPages  uint64 `json:"evicted_pages"`
	Commits       uint64 `json:"commits"`
}

// jsonReport is the machine-readable output of -json: environment metadata,
// the engine microbenchmarks, per-experiment wall times with amortized
// per-run cost, and the sweep-progress totals. Parallelism is the harness
// value actually used for the runs (after defaulting), not the flag.
type jsonReport struct {
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	NumCPU      int                    `json:"num_cpu"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Parallelism int                    `json:"parallelism"`
	Scale       float64                `json:"scale"`
	Warps       int                    `json:"warps"`
	Engine      map[string]benchResult `json:"engine"`
	Experiments []expResult            `json:"experiments"`
	Sweep       sweepReport            `json:"sweep"`
}

func toBenchResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// engineBenches runs the scheduler microbenchmarks in-process, mirroring
// internal/engine's benchmark suite: the closure path, the pooled arg path,
// and the far-future overflow tier.
func engineBenches() map[string]benchResult {
	out := map[string]benchResult{}
	out["schedule_run"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := engine.New()
		left := b.N
		var tick func()
		tick = func() {
			left--
			if left > 0 {
				e.Schedule(1, tick)
			}
		}
		e.Schedule(0, tick)
		b.ResetTimer()
		if _, err := e.Run(nil); err != nil {
			b.Fatal(err)
		}
	}))
	out["schedule_run_arg"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := engine.New()
		var tick func(uint64)
		tick = func(left uint64) {
			if left > 0 {
				e.ScheduleArg(1, tick, left-1)
			}
		}
		e.ScheduleArg(0, tick, uint64(b.N))
		b.ResetTimer()
		if _, err := e.Run(nil); err != nil {
			b.Fatal(err)
		}
	}))
	out["schedule_overflow"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := engine.New()
		var tick func(uint64)
		tick = func(left uint64) {
			if left > 0 {
				e.ScheduleArg(5000+memdef.Cycle(left%1000), tick, left-1)
			}
		}
		e.ScheduleArg(0, tick, uint64(b.N))
		b.ResetTimer()
		if _, err := e.Run(nil); err != nil {
			b.Fatal(err)
		}
	}))
	return out
}

// writeCSV stores one experiment's table as <dir>/<id>.csv.
func writeCSV(s *cppe.Session, dir, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	err = s.ExperimentCSV(id, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (empty = all); see -list")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 0, "workload footprint scale (default 0.25)")
		warps   = flag.Int("warps", 0, "concurrent access streams (default 64)")
		seed    = flag.Int64("seed", 0, "workload/PRNG seed")
		par     = flag.Int("parallel", 0, "concurrent simulations (default GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print per-experiment timing")
		bars    = flag.Bool("bars", false, "render figure experiments as ASCII bar charts")
		csvDir  = flag.String("csv", "", "also write each experiment as CSV into this directory")
		sysCfg  = flag.String("config", "", "JSON file overriding Table-I system parameters")
		dumpCfg = flag.Bool("dump-config", false, "print the default system configuration as JSON and exit")
		check   = flag.Bool("check", false, "run the claims self-check and exit non-zero if any claim fails")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
		jsonOut    = flag.String("json", "", "write a machine-readable report (engine microbenchmarks + per-experiment wall times) to this file")
	)
	flag.Parse()

	if *dumpCfg {
		fmt.Printf("%s\n", cppe.DefaultSystemJSON())
		return
	}
	if *list {
		for _, id := range cppe.Experiments() {
			fmt.Println(id)
		}
		return
	}

	opt := cppe.Options{Scale: *scale, Warps: *warps, Seed: *seed, Parallelism: *par}
	var s *cppe.Session
	if *sysCfg != "" {
		data, err := os.ReadFile(*sysCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		s, err = cppe.NewSessionWithSystem(opt, data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
	} else {
		s = cppe.NewSession(opt)
	}

	if *check {
		out, err := s.Experiment(cppe.ExpClaims)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		if strings.Contains(out, "FAIL") {
			fmt.Fprintln(os.Stderr, "cppe-bench: claims self-check FAILED")
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := cppe.Experiments()
	if *exp != "" {
		ids = []string{*exp}
	}
	var expTimes []expResult
	for _, id := range ids {
		runsBefore := s.CachedRuns()
		var memBefore runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		t0 := time.Now()
		var out string
		var err error
		if *bars {
			out, err = s.ExperimentBars(id)
			if err != nil && *exp == "" {
				// In all-experiments mode, fall back to tables for
				// non-figure artifacts.
				out, err = s.Experiment(id)
			}
		} else {
			out, err = s.Experiment(id)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *csvDir != "" {
			if err := writeCSV(s, *csvDir, id); err != nil {
				fmt.Fprintln(os.Stderr, "cppe-bench:", err)
				os.Exit(1)
			}
		}
		wallMs := float64(time.Since(t0).Microseconds()) / 1000
		er := expResult{
			ID:         id,
			WallMs:     wallMs,
			CachedRuns: s.CachedRuns(),
			NewRuns:    s.CachedRuns() - runsBefore,
		}
		if er.NewRuns > 0 {
			var memAfter runtime.MemStats
			runtime.ReadMemStats(&memAfter)
			n := uint64(er.NewRuns)
			er.WallMsPerRun = wallMs / float64(er.NewRuns)
			er.AllocsPerRun = (memAfter.Mallocs - memBefore.Mallocs) / n
			er.BytesPerRun = (memAfter.TotalAlloc - memBefore.TotalAlloc) / n
		}
		expTimes = append(expTimes, er)
		if *verbose {
			fmt.Printf("[%s: %v, %d cached simulations]\n\n", id, time.Since(t0).Round(time.Millisecond), s.CachedRuns())
		}
	}

	if *cpuprofile != "" {
		// Stop before the microbenchmarks so the profile covers only the
		// experiment runs (the deferred stop then becomes a no-op).
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *jsonOut != "" {
		effScale := *scale
		if effScale == 0 {
			effScale = 0.25
		}
		effWarps := *warps
		if effWarps == 0 {
			effWarps = 64
		}
		st := s.Harness().SweepStats()
		rep := jsonReport{
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Parallelism: s.Harness().Config().Parallelism,
			Scale:       effScale,
			Warps:       effWarps,
			Engine:      engineBenches(),
			Experiments: expTimes,
			Sweep: sweepReport{
				Runs:          st.Runs,
				Cycles:        st.Cycles,
				Accesses:      st.Accesses,
				Faults:        st.Faults,
				MigratedPages: st.MigratedPages,
				EvictedPages:  st.EvictedPages,
				Commits:       st.Commits,
			},
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cppe-bench:", err)
			os.Exit(1)
		}
	}
}
