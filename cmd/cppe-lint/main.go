// Command cppe-lint runs the repository's determinism and simulation-safety
// static analyzers (package internal/lint) over the module: the five
// file-local determinism passes (mapiter, wallclock, globalrand, panicfree,
// gofreeze) plus the semantic whole-program suite (statecov, viewleak,
// detreach, errdrop) and the unused-waiver audit.
//
// Usage:
//
//	cppe-lint [-json] [-diff ref] [packages]
//
// Packages are directory paths; a trailing /... walks the subtree. With no
// arguments, ./... is assumed. Pattern arguments scope each check to the
// simulation-core packages it governs; naming a directory explicitly (as the
// self-test fixtures do) runs every check on it unconditionally.
//
// With -diff <ref>, the whole tree is still analyzed (the semantic passes
// need the full program graph) but only diagnostics on lines changed since
// the git ref are reported — the cheap incremental mode for pre-commit
// hooks: cppe-lint -diff HEAD, cppe-lint -diff origin/main.
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were reported,
// and 2 on usage or load errors. Diagnostics print as
//
//	file:line: [check] message
//
// or, with -json, as a JSON array of {file, line, col, check, message}.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/reproductions/cppe/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	listChecks := flag.Bool("checks", false, "list the analyzer suite and exit")
	diffRef := flag.String("diff", "", "report only diagnostics on lines changed since this git ref")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cppe-lint [-json] [-diff ref] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listChecks {
		for _, c := range lint.Checks() {
			fmt.Printf("%-10s (waiver //cppelint:%s) %s\n", c.Name, c.Directive, c.Doc)
		}
		return
	}

	patterns := flag.Args()
	scoped := false
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Walk patterns get per-check package scoping; explicit directories are
	// linted in full (that is how the fixtures assert their diagnostics).
	for _, p := range patterns {
		if strings.HasSuffix(p, "...") {
			scoped = true
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.ExpandPatterns(patterns, cwd)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.NewRunner(loader, scoped).LintDirs(dirs)
	if err != nil {
		fatal(err)
	}

	if *diffRef != "" {
		changed, err := changedSince(loader.ModuleRoot, *diffRef)
		if err != nil {
			fatal(err)
		}
		diags = lint.FilterChanged(diags, changed)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// changedSince runs git diff against ref and parses the changed Go lines.
// -U0 keeps hunks exact (no context lines inflating the changed set).
func changedSince(root, ref string) (lint.ChangedLines, error) {
	cmd := exec.Command("git", "-C", root, "diff", "-U0", ref, "--", "*.go")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("git diff %s: %v: %s", ref, err, strings.TrimSpace(errb.String()))
	}
	return lint.ParseUnifiedDiff(&out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cppe-lint:", err)
	os.Exit(2)
}
