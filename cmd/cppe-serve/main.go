// Command cppe-serve runs the crash-safe sweep service: an HTTP/JSON API that
// schedules simulations on a bounded worker pool and caches completed results
// content-addressed by their checkpoint-envelope fingerprint.
//
//	cppe-serve -addr :8080 -state-dir /var/lib/cppe -workers 2
//
//	curl -s localhost:8080/healthz
//	curl -s -XPOST localhost:8080/v1/jobs \
//	     -d '{"benchmark":"SRD","setup":"cppe","oversubscription":50}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/result     # == cppe-sim -json output
//	curl -s -XPOST localhost:8080/v1/sweeps \
//	     -d '{"benchmarks":["SRD","NW"],"setups":["base","cppe"],"oversubscriptions":[75,50]}'
//	curl -s localhost:8080/v1/sweeps/<id>          # per-point states + counts
//	curl -s localhost:8080/v1/sweeps/<id>/result   # the (partial) grid
//	curl -sN localhost:8080/v1/sweeps/<id>/events  # SSE progress stream
//	curl -s localhost:8080/statsz
//
// Durability: every accepted job is journaled under the state directory and
// running jobs checkpoint periodically, so a kill -9 loses nothing — on
// restart the journal replays and interrupted runs resume from their last
// checkpoint. SIGTERM/SIGINT drain gracefully: new submissions are shed with
// 503, running jobs park at their next checkpoint boundary, and the process
// exits 0 with a journal the next start continues from.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	cppe "github.com/reproductions/cppe"
	"github.com/reproductions/cppe/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		stateDir  = flag.String("state-dir", "cppe-serve-state", "durable state directory (journal, results, checkpoints)")
		workers   = flag.Int("workers", 2, "simulation worker pool size")
		queueLen  = flag.Int("queue", 64, "admission queue depth; a full queue sheds submissions with 429")
		ckptEvery = flag.Uint64("checkpoint-every", 1<<21, "checkpoint cadence in simulated cycles (also bounds drain latency)")
		attempts  = flag.Int("max-attempts", 3, "run attempts per job before terminal failure")
		retryBase = flag.Duration("retry-base", 500*time.Millisecond, "initial retry backoff (doubles per attempt)")
		retryCap  = flag.Duration("retry-cap", 8*time.Second, "retry backoff ceiling")
		deadline  = flag.Duration("deadline", 0, "per-attempt wall-clock budget, enforced at checkpoint boundaries (0 = none)")
		drainWait = flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget for parking running jobs (0 = wait forever)")
		sweepWork = flag.Int("sweep-workers", 0, "per-sweep fan-out window: points of one sweep in flight at a time (default: -workers)")
		storeMax  = flag.Int64("store-max-bytes", 0, "result store size budget; LRU tail evicted past it (0 = unbounded)")
		storeAge  = flag.Duration("store-max-age", 0, "evict results older than this and expire manifests of long-done sweeps (0 = never)")
		scale     = flag.Float64("scale", 0, "workload footprint scale for all jobs (default 0.25)")
		warps     = flag.Int("warps", 0, "concurrent access streams (default 64)")
		seed      = flag.Int64("seed", 0, "workload/PRNG seed")
		timeout   = flag.Duration("timeout", 0, "per-run no-progress watchdog (0 = 30s default, negative = off)")
	)
	flag.Parse()
	log.SetPrefix("cppe-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	// One shared session: its options are part of every job's identity, so a
	// state dir must be paired with stable -scale/-warps/-seed flags (changing
	// them changes the fingerprints, and old cache entries simply never match).
	session := cppe.NewSession(cppe.Options{
		Scale: *scale, Warps: *warps, Seed: *seed, Timeout: *timeout,
	})
	srv, err := serve.New(serve.Config{
		StateDir:        *stateDir,
		Workers:         *workers,
		QueueDepth:      *queueLen,
		CheckpointEvery: *ckptEvery,
		MaxAttempts:     *attempts,
		RetryBase:       *retryBase,
		RetryCap:        *retryCap,
		Deadline:        *deadline,
		SweepWorkers:    *sweepWork,
		StoreMaxBytes:   *storeMax,
		StoreMaxAge:     *storeAge,
		Runner:          serve.SessionRunner(session),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppe-serve:", err)
		os.Exit(1)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (state dir %s, %d workers)", *addr, *stateDir, *workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("caught %v: draining", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cppe-serve:", err)
		os.Exit(1)
	}

	// Graceful shutdown: shed new work, park running jobs at their next
	// checkpoint boundary (journaled as queued), then stop the HTTP listener.
	// Exit 0 means the journal is complete and a restart continues the work.
	srv.Drain()
	if err := srv.Shutdown(*drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "cppe-serve:", err)
		os.Exit(1)
	}
	httpSrv.Close()
	log.Printf("drained; journal is replayable from %s", *stateDir)
}
