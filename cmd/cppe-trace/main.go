// Command cppe-trace generates a synthetic workload trace and prints its
// page-level statistics: footprint, touched pages, per-chunk touch density,
// and (optionally) the first accesses of each warp. It is the inspection
// tool for the Table II workload generators.
//
// Usage:
//
//	cppe-trace -bench NW
//	cppe-trace -bench BFS -scale 0.1 -dump 20
//	cppe-trace -bench MVT -o mvt.trc      # save to the binary trace format
//	cppe-trace -i mvt.trc                 # inspect a saved trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/trace"
	"github.com/reproductions/cppe/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "SRD", "Table II benchmark abbreviation")
		scale = flag.Float64("scale", 0.25, "footprint scale")
		warps = flag.Int("warps", 64, "access streams")
		seed  = flag.Int64("seed", 0, "generator seed")
		dump  = flag.Int("dump", 0, "print the first N accesses of warp 0")
		all   = flag.Bool("all", false, "summarize every benchmark instead")
		out   = flag.String("o", "", "write the generated trace to this file")
		in    = flag.String("i", "", "inspect a saved trace file instead of generating")
	)
	flag.Parse()

	opt := workload.Options{Scale: *scale, Warps: *warps, Seed: *seed}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-trace:", err)
			os.Exit(1)
		}
		s := trace.Summarize(tr)
		fmt.Printf("file        %s\n", *in)
		fmt.Printf("footprint   %d pages\n", s.FootprintPages)
		fmt.Printf("warps       %d\n", len(tr.Warps))
		fmt.Printf("accesses    %d (%d reads, %d writes)\n", s.Accesses, s.Reads, s.Writes)
		fmt.Printf("touched     %d pages in %d chunks\n", s.TouchedPages, s.TouchedChunks)
		return
	}

	if *all {
		fmt.Printf("%-6s %-5s %10s %10s %10s %8s\n", "Abbr", "Type", "Footprint", "Touched", "Accesses", "Density")
		for _, b := range workload.All() {
			tr := b.Generate(opt)
			fmt.Printf("%-6s %-5s %10d %10d %10d %7.1f%%\n",
				b.Abbr, b.Type.Short(), tr.FootprintPages, tr.TouchedPages, tr.Accesses,
				100*float64(tr.TouchedPages)/float64(tr.FootprintPages))
		}
		return
	}

	b, ok := workload.ByAbbr(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "cppe-trace: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	tr := b.Generate(opt)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-trace:", err)
			os.Exit(1)
		}
		err = trace.Write(f, &trace.Trace{FootprintPages: tr.FootprintPages, Warps: tr.Warps})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppe-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d accesses)\n", *out, tr.Accesses)
	}

	fmt.Printf("benchmark   %s (%s, %s)\n", b.Name, b.Abbr, b.Type)
	fmt.Printf("footprint   %d pages (%d chunks, %.1f MB scaled from %.1f MB)\n",
		tr.FootprintPages, tr.FootprintPages/memdef.ChunkPages,
		float64(tr.FootprintPages)*memdef.PageBytes/(1<<20), b.FootprintMB)
	fmt.Printf("touched     %d pages (%.1f%% of footprint)\n",
		tr.TouchedPages, 100*float64(tr.TouchedPages)/float64(tr.FootprintPages))
	fmt.Printf("accesses    %d over %d warps\n", tr.Accesses, len(tr.Warps))

	// Per-chunk touch-density histogram: how many chunks have k touched
	// pages (the quantity behind the paper's untouch levels).
	touched := map[memdef.ChunkID]map[int]bool{}
	for _, w := range tr.Warps {
		for _, a := range w {
			c := a.Addr.Chunk()
			if touched[c] == nil {
				touched[c] = map[int]bool{}
			}
			touched[c][a.Addr.Page().Index()] = true
		}
	}
	hist := make([]int, memdef.ChunkPages+1)
	for _, pages := range touched {
		hist[len(pages)]++
	}
	fmt.Println("chunk touch-density histogram (touched pages per chunk -> chunks):")
	for k, n := range hist {
		if n > 0 {
			fmt.Printf("  %2d: %d\n", k, n)
		}
	}

	if *dump > 0 && len(tr.Warps) > 0 {
		fmt.Printf("first %d accesses of warp 0:\n", *dump)
		for i, a := range tr.Warps[0] {
			if i >= *dump {
				break
			}
			fmt.Printf("  %s %v (page %v, chunk %v)\n", a.Kind, a.Addr, a.Addr.Page(), a.Addr.Chunk())
		}
	}
}
