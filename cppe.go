// Package cppe is a simulation-based reproduction of "Coordinated Page
// Prefetch and Eviction for Memory Oversubscription Management in GPUs"
// (Yu, Childers, Huang, Qian, Guo, Wang — IPDPS 2020).
//
// It bundles a discrete-event GPU memory-system simulator (SMs with
// replayable far faults, two-level TLBs, a threaded page-table walker with a
// page-walk cache, data caches, GDDR5 DRAM, a PCIe link and a UVM driver
// runtime), the eviction policies and prefetchers the paper studies (LRU,
// Random, reserved LRU, HPE, MHPE; sequential-local, tree-based,
// pattern-aware, disable-on-full), synthetic generators for the 23 Table-II
// workloads, and a harness that regenerates every table and figure of the
// evaluation.
//
// Quick start:
//
//	s := cppe.NewSession(cppe.Options{})
//	r := s.MustRun(cppe.Request{Benchmark: "SRD", Setup: cppe.SetupCPPE, Oversubscription: 50})
//	base := s.MustRun(cppe.Request{Benchmark: "SRD", Setup: cppe.SetupBaseline, Oversubscription: 50})
//	fmt.Printf("CPPE speedup on SRD: %.2fx\n", cppe.Speedup(base, r))
//
// Or regenerate a paper artifact:
//
//	text, _ := s.Experiment(cppe.ExpFig8)
//	fmt.Println(text)
package cppe

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/reproductions/cppe/internal/audit"
	"github.com/reproductions/cppe/internal/harness"
	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/stats"
	"github.com/reproductions/cppe/internal/trace"
	"github.com/reproductions/cppe/internal/workload"
)

// Canonical setup names (policy + prefetcher combinations).
const (
	// SetupBaseline is the state-of-the-art software baseline: LRU
	// pre-eviction + sequential-local (locality) prefetcher, prefetching
	// naively under oversubscription.
	SetupBaseline = "baseline"
	// SetupCPPE is the paper's system: MHPE + access pattern-aware
	// prefetcher with deletion Scheme-2.
	SetupCPPE = "cppe"
	// SetupCPPEScheme1 is CPPE with pattern-buffer deletion Scheme-1.
	SetupCPPEScheme1 = "cppe-s1"
	// SetupRandom is Random eviction + locality prefetcher.
	SetupRandom = "random"
	// SetupReservedLRU10 and SetupReservedLRU20 reserve the top 10%/20% of
	// the LRU chain.
	SetupReservedLRU10 = "lru-10%"
	SetupReservedLRU20 = "lru-20%"
	// SetupDisableOnFull stops prefetching once GPU memory fills.
	SetupDisableOnFull = "disable-on-full"
	// SetupHPE is the original hierarchical page eviction + locality
	// prefetcher (the counter-pollution ablation).
	SetupHPE = "hpe"
	// SetupTree is LRU + the tree-based neighborhood prefetcher.
	SetupTree = "tree"
	// SetupLearned is the learned perceptron eviction policy + the paper's
	// pattern-aware prefetcher (Scheme-2) — the in-tree demonstration of the
	// policy plugin registry (see RegisterPolicy).
	SetupLearned = "learned"
)

// Experiment identifiers accepted by Session.Experiment.
const (
	ExpTable1     = "table1"
	ExpTable2     = "table2"
	ExpFig3       = "fig3"
	ExpFig4       = "fig4"
	ExpTable3     = "table3"
	ExpTable4     = "table4"
	ExpSweepT3    = "sweep-t3"
	ExpFig7       = "fig7"
	ExpFig8       = "fig8"
	ExpFig9a      = "fig9-75"
	ExpFig9b      = "fig9-50"
	ExpFig10      = "fig10"
	ExpOverhead   = "overhead"
	ExpAblHPE     = "ablation-hpe"
	ExpAblTree    = "ablation-tree"
	ExpAblMHPE    = "ablation-mhpe-design"
	ExpAblTrueLRU = "ablation-true-lru"
	ExpSweepRate  = "sweep-rate"
	ExpBreakdown  = "breakdown"
	ExpClaims     = "claims"
	ExpRobustness = "robustness"
	// ExpFig8Learned benchmarks the learned eviction policy against CPPE
	// across all 23 workloads (the registry's end-to-end experiment).
	ExpFig8Learned = "fig8-learned"
)

// Options configure a Session. The zero value reproduces the paper's
// configuration at the default workload scale.
type Options struct {
	// Scale multiplies workload footprints (default 0.25). Smaller is
	// faster; comparisons are scale-relative.
	Scale float64
	// Warps is the number of concurrent access streams (default 64).
	Warps int
	// Seed perturbs workload generation and the Random policy (default 0).
	Seed int64
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	Parallelism int
	// Audit enables the simulation integrity auditor: periodic and
	// transition-point verification of the cross-module conservation
	// invariants. Checks are read-only, so results are bit-for-bit identical
	// with auditing on or off; a violation surfaces in Result.Err.
	Audit bool
	// ChaosSeed, when non-zero, arms deterministic fault injection at the
	// interconnect/UVM boundary (delayed/reordered migration completions,
	// transient far-fault failures retried by the driver). The same seed
	// reproduces the same perturbation schedule exactly.
	ChaosSeed int64
	// Timeout arms the per-run no-progress watchdog: a run whose frontier
	// cycle stays frozen for this much wall-clock time fails with a
	// structured engine livelock error instead of hanging forever. Zero
	// keeps the default (30s); negative disables the watchdog. The watchdog
	// only reads the wall clock between events, so results are unchanged for
	// runs that make progress.
	Timeout time.Duration
}

// baseConfig derives the Table-I configuration with the Options' integrity
// knobs applied.
func baseConfig(opt Options) memdef.Config {
	cfg := memdef.DefaultConfig()
	if opt.Audit {
		cfg.AuditEveryCycles = audit.DefaultEveryCycles
	}
	cfg.ChaosSeed = opt.ChaosSeed
	return cfg
}

// Request identifies one simulation.
type Request struct {
	// Benchmark is a Table II abbreviation ("SRD", "NW", ...).
	Benchmark string
	// Setup is one of the Setup* constants.
	Setup string
	// Oversubscription is the percentage of the footprint that fits in GPU
	// memory (75 or 50 in the paper; 0 = unlimited memory).
	Oversubscription int
}

// Result summarizes one simulation.
type Result struct {
	Request Request
	// Cycles is the modeled execution time in 1.4 GHz core cycles.
	Cycles uint64
	// Crashed reports a thrash-detector abort (the modeled analogue of the
	// paper's baseline crashes for MVT/BICG) or a run failure (see Err).
	Crashed bool
	// Err is the structured failure of the run, if any: a typed driver
	// error, an engine livelock error, an integrity violation, or a
	// recovered panic. Nil for clean runs and plain thrash aborts.
	Err error
	// Accesses is the number of completed memory accesses.
	Accesses uint64
	// FaultEvents is the number of distinct far-fault service events.
	FaultEvents uint64
	// MigratedPages and EvictedPages count page traffic over the link.
	MigratedPages uint64
	EvictedPages  uint64
	// FootprintPages and CapacityPages describe the memory geometry.
	FootprintPages int
	CapacityPages  int
}

// Session caches simulation results so figures that share runs do not repeat
// them. Sessions are safe for concurrent use.
type Session struct {
	h *harness.Session
}

// NewSession creates a session with the paper's Table-I system configuration.
func NewSession(opt Options) *Session {
	return &Session{h: harness.NewSession(harness.Config{
		Base:           baseConfig(opt),
		Scale:          opt.Scale,
		Warps:          opt.Warps,
		Seed:           opt.Seed,
		Parallelism:    opt.Parallelism,
		WatchdogWindow: opt.Timeout,
	})}
}

// NewSessionWithSystem creates a session whose Table-I parameters are
// overridden by a JSON document (absent fields keep their defaults; see
// DefaultSystemJSON for the template). For example, to double the
// interconnect bandwidth: {"PCIeGBs": 32}.
func NewSessionWithSystem(opt Options, systemJSON []byte) (*Session, error) {
	cfg, err := memdef.ConfigFromJSON(systemJSON)
	if err != nil {
		return nil, err
	}
	if opt.Audit && cfg.AuditEveryCycles == 0 {
		cfg.AuditEveryCycles = audit.DefaultEveryCycles
	}
	if opt.ChaosSeed != 0 {
		cfg.ChaosSeed = opt.ChaosSeed
	}
	// Reject a structurally broken configuration here, with a one-line error,
	// instead of letting machine construction panic mid-sweep.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{h: harness.NewSession(harness.Config{
		Base:           cfg,
		Scale:          opt.Scale,
		Warps:          opt.Warps,
		Seed:           opt.Seed,
		Parallelism:    opt.Parallelism,
		WatchdogWindow: opt.Timeout,
	})}, nil
}

// DefaultSystemJSON returns the Table-I configuration as indented JSON, the
// template for NewSessionWithSystem override files.
func DefaultSystemJSON() []byte {
	data, err := memdef.ConfigJSON(memdef.DefaultConfig())
	if err != nil {
		panic(err) // the default config is always serializable
	}
	return data
}

// Benchmarks returns the Table II benchmark abbreviations in paper order.
func Benchmarks() []string { return workload.Abbrs() }

// Setups returns the canonical setup names. Beyond these, any registered
// "<eviction>+<prefetcher>" pair (see RegisterPolicy, EvictionPolicies,
// Prefetchers) is a valid Request.Setup, resolved dynamically.
func Setups() []string {
	return []string{
		SetupBaseline, SetupCPPE, SetupCPPEScheme1, SetupRandom,
		SetupReservedLRU10, SetupReservedLRU20, SetupDisableOnFull,
		SetupHPE, SetupTree, SetupLearned,
	}
}

// Experiments returns the experiment identifiers in paper order.
func Experiments() []string {
	return []string{
		ExpTable1, ExpTable2, ExpFig3, ExpFig4, ExpTable3, ExpTable4,
		ExpSweepT3, ExpFig7, ExpFig8, ExpFig9a, ExpFig9b, ExpFig10,
		ExpOverhead, ExpAblHPE, ExpAblTree, ExpAblMHPE, ExpAblTrueLRU,
		ExpSweepRate, ExpBreakdown, ExpRobustness, ExpClaims,
		ExpFig8Learned,
	}
}

// Run executes (or fetches from cache) one simulation.
func (s *Session) Run(req Request) (Result, error) {
	if err := s.validate(req); err != nil {
		return Result{}, err
	}
	r := s.h.Run(harness.Key{Bench: req.Benchmark, Setup: req.Setup, OversubPct: req.Oversubscription})
	return fromHarness(req, r), nil
}

// RunCheckpointed executes one simulation like Run, additionally writing a
// resumable checkpoint to path roughly every everyCycles cycles of simulated
// time. A process killed mid-run can continue from the last checkpoint with
// ResumeCheckpoint. Fault injection (ChaosSeed) cannot be checkpointed: the
// run fails with a structured error instead of writing a snapshot that could
// not reproduce the injected schedule.
func (s *Session) RunCheckpointed(req Request, path string, everyCycles uint64) (Result, error) {
	if err := s.validate(req); err != nil {
		return Result{}, err
	}
	k := harness.Key{Bench: req.Benchmark, Setup: req.Setup, OversubPct: req.Oversubscription}
	return fromHarness(req, s.h.RunCheckpointed(k, path, memdef.Cycle(everyCycles))), nil
}

// ResumeCheckpoint continues a simulation from a checkpoint file written by
// RunCheckpointed (the file names its own benchmark, setup, and rate) and runs
// it to completion, still checkpointing to the same path every everyCycles
// cycles. Corrupt, truncated, or mismatched checkpoints return an error
// without running anything; they are never silently resumed.
func (s *Session) ResumeCheckpoint(path string, everyCycles uint64) (Result, error) {
	r, err := s.h.Resume(path, memdef.Cycle(everyCycles))
	if err != nil {
		return Result{}, err
	}
	req := Request{Benchmark: r.Key.Bench, Setup: r.Key.Setup, Oversubscription: r.Key.OversubPct}
	return fromHarness(req, r), nil
}

// MustRun is Run for known-good requests; it panics on a bad request.
func (s *Session) MustRun(req Request) Result {
	r, err := s.Run(req)
	if err != nil {
		panic(err)
	}
	return r
}

func fromHarness(req Request, r harness.Result) Result {
	return Result{
		Request:        req,
		Cycles:         uint64(r.Cycles),
		Crashed:        r.Crashed,
		Err:            r.Err,
		Accesses:       r.Accesses,
		FaultEvents:    r.UVM.FaultEvents,
		MigratedPages:  r.UVM.MigratedPages,
		EvictedPages:   r.UVM.EvictedPages,
		FootprintPages: r.FootprintPages,
		CapacityPages:  r.CapacityPages,
	}
}

// Speedup returns cycles(reference)/cycles(candidate); 0 when either run
// crashed (rendered as 'X' in the paper's figures).
func Speedup(reference, candidate Result) float64 {
	if reference.Crashed || candidate.Crashed || candidate.Cycles == 0 {
		return 0
	}
	return float64(reference.Cycles) / float64(candidate.Cycles)
}

// tableFor dispatches an experiment id to its table constructor.
func (s *Session) tableFor(id string) (*stats.Table, error) {
	switch id {
	case ExpTable1:
		return harness.TableI(memdef.DefaultConfig()), nil
	case ExpTable2:
		return s.h.TableII(), nil
	case ExpFig3:
		return s.h.Fig3(), nil
	case ExpFig4:
		return s.h.Fig4(), nil
	case ExpTable3:
		return s.h.TableIII(), nil
	case ExpTable4:
		return s.h.TableIV(), nil
	case ExpSweepT3:
		return s.h.SweepT3(), nil
	case ExpFig7:
		return s.h.Fig7(), nil
	case ExpFig8:
		return s.h.Fig8(), nil
	case ExpFig9a:
		return s.h.Fig9(75), nil
	case ExpFig9b:
		return s.h.Fig9(50), nil
	case ExpFig10:
		return s.h.Fig10(), nil
	case ExpOverhead:
		return s.h.OverheadReport(), nil
	case ExpAblHPE:
		return s.h.AblationHPE(), nil
	case ExpAblTree:
		return s.h.AblationTree(), nil
	case ExpAblMHPE:
		return s.h.AblationMHPEDesign(), nil
	case ExpAblTrueLRU:
		return s.h.AblationTrueLRU(), nil
	case ExpSweepRate:
		return s.h.SweepRate(), nil
	case ExpBreakdown:
		return s.h.Breakdown(), nil
	case ExpRobustness:
		return s.h.Robustness(), nil
	case ExpClaims:
		return s.h.ClaimsTable(), nil
	case ExpFig8Learned:
		return s.h.Fig8Learned(), nil
	default:
		known := Experiments()
		sort.Strings(known)
		return nil, fmt.Errorf("cppe: unknown experiment %q (known: %v)", id, known)
	}
}

// Experiment regenerates one paper artifact as an aligned text table.
func (s *Session) Experiment(id string) (string, error) {
	t, err := s.tableFor(id)
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// ExperimentCSV writes one paper artifact as CSV (header + data rows), for
// downstream plotting.
func (s *Session) ExperimentCSV(id string, w io.Writer) error {
	t, err := s.tableFor(id)
	if err != nil {
		return err
	}
	return t.WriteCSV(w)
}

// Describe runs (or fetches) one simulation and renders its complete
// instrumentation — translation-path breakdown, migration traffic, and the
// policy's internal trajectory — as a multi-section text report.
func (s *Session) Describe(req Request) (string, error) {
	if _, err := s.Run(req); err != nil {
		return "", err
	}
	return s.h.Describe(harness.Key{
		Bench: req.Benchmark, Setup: req.Setup, OversubPct: req.Oversubscription,
	}), nil
}

// RunTraceFrom reads a serialized access trace (the binary format written by
// `cppe-trace -o`) and simulates it under the given setup at the given
// oversubscription rate. Unlike Run, trace runs are not cached.
func (s *Session) RunTraceFrom(r io.Reader, setup string, oversubscription int) (Result, error) {
	if _, err := s.h.ResolveSetup(setup); err != nil {
		return Result{}, fmt.Errorf("cppe: %w (see Setups, EvictionPolicies, Prefetchers)", err)
	}
	if oversubscription < 0 || oversubscription > 100 {
		return Result{}, fmt.Errorf("cppe: oversubscription %d%% out of [0,100]", oversubscription)
	}
	tr, err := trace.Read(r)
	if err != nil {
		return Result{}, fmt.Errorf("cppe: %w", err)
	}
	res := s.h.RunTrace(tr, setup, oversubscription)
	return fromHarness(Request{Benchmark: "trace", Setup: setup, Oversubscription: oversubscription}, res), nil
}

// ExperimentBars renders a figure-type experiment as horizontal ASCII bar
// charts, one chart per data series — the textual analogue of the paper's bar
// figures. Table-type experiments return an error; use Experiment instead.
func (s *Session) ExperimentBars(id string) (string, error) {
	var t *stats.Table
	var cols []int
	switch id {
	case ExpFig3:
		t, cols = s.h.Fig3(), []int{1, 2, 3}
	case ExpFig7:
		t, cols = s.h.Fig7(), []int{1, 2}
	case ExpFig8:
		t, cols = s.h.Fig8(), []int{2, 3}
	case ExpFig9a:
		t, cols = s.h.Fig9(75), []int{2, 3, 4, 5}
	case ExpFig9b:
		t, cols = s.h.Fig9(50), []int{2, 3, 4, 5}
	case ExpFig10:
		t, cols = s.h.Fig10(), []int{1, 2, 3, 4}
	case ExpSweepRate:
		t, cols = s.h.SweepRate(), []int{1, 2, 3, 4, 5}
	default:
		return "", fmt.Errorf("cppe: %q is not a figure experiment (bars available for fig3/fig7/fig8/fig9-*/fig10/sweep-rate)", id)
	}
	var b strings.Builder
	for _, c := range cols {
		bars, err := stats.BarsFromTable(t, 0, c, 40)
		if err != nil {
			return "", err
		}
		b.WriteString(bars)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// CachedRuns reports how many simulations the session has executed.
func (s *Session) CachedRuns() int { return s.h.CachedRuns() }

// Harness exposes the underlying experiment session for advanced use by the
// repository's own commands; external users should prefer the stable API.
func (s *Session) Harness() *harness.Session { return s.h }
