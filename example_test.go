package cppe_test

import (
	"fmt"

	cppe "github.com/reproductions/cppe"
)

// The benchmark registry mirrors Table II of the paper.
func ExampleBenchmarks() {
	all := cppe.Benchmarks()
	fmt.Println(len(all), "benchmarks")
	fmt.Println("first:", all[0], "last:", all[len(all)-1])
	// Output:
	// 23 benchmarks
	// first: HOT last: HYB
}

// Setups lists the policy + prefetcher combinations of the evaluation.
func ExampleSetups() {
	for _, s := range cppe.Setups()[:3] {
		fmt.Println(s)
	}
	// Output:
	// baseline
	// cppe
	// cppe-s1
}

// Speedup renders crashed runs as 0 so figures can mark them 'X'.
func ExampleSpeedup() {
	base := cppe.Result{Cycles: 3000}
	fast := cppe.Result{Cycles: 1500}
	crashed := cppe.Result{Cycles: 9999, Crashed: true}
	fmt.Printf("%.1f\n", cppe.Speedup(base, fast))
	fmt.Printf("%.1f\n", cppe.Speedup(base, crashed))
	// Output:
	// 2.0
	// 0.0
}

// A Session runs simulations and regenerates paper artifacts. This example
// runs one small simulation; outputs are deterministic but depend on the
// model constants, so it prints only a stable derived fact.
func ExampleSession_Run() {
	s := cppe.NewSession(cppe.Options{Scale: 0.05, Warps: 16})
	r, err := s.Run(cppe.Request{
		Benchmark:        "STN",
		Setup:            cppe.SetupCPPE,
		Oversubscription: 50,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", r.Accesses > 0 && r.Cycles > 0)
	fmt.Println("oversubscribed:", r.CapacityPages < r.FootprintPages)
	// Output:
	// completed: true
	// oversubscribed: true
}
