package cppe

import (
	"github.com/reproductions/cppe/internal/evict"
	"github.com/reproductions/cppe/internal/memdef"
	"github.com/reproductions/cppe/internal/policy"
	"github.com/reproductions/cppe/internal/prefetch"
)

// This file is the versioned policy plugin surface: everything an external
// package needs to implement, register, and run its own eviction policy or
// prefetcher, exported as aliases of the internal types so a registered
// implementation is indistinguishable from the in-tree ones. A custom policy
// sees the machine only through MachineView — residency and touch bit
// vectors, capacity pressure, the recent-eviction pattern window, and the
// cycle clock — never the simulator's mutable internals, so it cannot perturb
// the machine except through its eviction decisions. See DESIGN.md §13 and
// the README "writing your own policy" walkthrough; internal/policytest has
// the conformance suite a correct implementation must pass.

// PolicyAPIVersion is the policy-contract version this build implements.
// Registrations must declare it; the registry rejects every other value.
const PolicyAPIVersion = policy.APIVersion

// Typed registration and lookup failures (errors.Is-able).
var (
	// ErrPolicyExists reports a duplicate (kind, name) registration.
	ErrPolicyExists = policy.ErrPolicyExists
	// ErrUnknownPolicy reports a lookup of an unregistered policy name. It
	// surfaces through Result.Err when a Request names an unknown policy pair.
	ErrUnknownPolicy = policy.ErrUnknownPolicy
	// ErrBadRegistration reports a structurally invalid Registration.
	ErrBadRegistration = policy.ErrBadRegistration
)

// Core simulator vocabulary, aliased for policy implementations.
type (
	// ChunkID identifies one 64 KiB migration chunk (16 pages).
	ChunkID = memdef.ChunkID
	// PageNum is a global 4 KiB page number.
	PageNum = memdef.PageNum
	// PageBitmap is one bit per page within a chunk.
	PageBitmap = memdef.PageBitmap
	// Cycle is simulated time in core clock cycles.
	Cycle = memdef.Cycle
	// SystemConfig is the Table-I machine configuration handed to factories.
	SystemConfig = memdef.Config

	// EvictionPolicy is the contract an eviction policy implements; see the
	// documentation of the aliased interface for the event-ordering contract.
	EvictionPolicy = evict.Policy
	// Prefetcher is the contract a prefetcher implements.
	Prefetcher = prefetch.Prefetcher
	// PrefetchContext carries per-fault machine state into Prefetcher.Plan.
	PrefetchContext = prefetch.Context

	// MachineView is the read-only window a view-driven policy observes the
	// machine through (implement PolicyViewBinder to receive one).
	MachineView = policy.MachineView
	// PolicyViewBinder is implemented by policies that want a MachineView;
	// BindView is called once at machine construction, before any event.
	PolicyViewBinder = policy.ViewBinder
	// EvictionRecord is one entry of MachineView.RecentEvictions.
	EvictionRecord = policy.EvictionRecord

	// PolicyEnv is the construction environment handed to factories: the
	// machine configuration and the run's deterministic seed.
	PolicyEnv = policy.Env
	// PolicyRegistration declares one named, versioned policy.
	PolicyRegistration = policy.Registration
	// PolicyKind selects the registration contract.
	PolicyKind = policy.Kind
)

// Registration kinds.
const (
	KindEviction = policy.KindEviction
	KindPrefetch = policy.KindPrefetch
)

// RegisterPolicy adds a named, versioned policy to the global registry.
// Registered names become addressable from every front-end as the setup
// "<eviction>+<prefetcher>" (e.g. "mhpe+locality", or a custom name paired
// with a built-in). Duplicate names return ErrPolicyExists and malformed
// registrations ErrBadRegistration; RegisterPolicy never panics, so a broken
// plugin degrades into one structured error.
//
// Factories must be deterministic: same PolicyEnv, same decisions. A policy
// that also implements the snapshot contract (EncodeState/DecodeState; see
// DESIGN.md §13) participates in checkpoint/restore like the built-ins.
func RegisterPolicy(reg PolicyRegistration) error { return policy.Register(reg) }

// EvictionPolicies returns the registered eviction-policy names, sorted.
func EvictionPolicies() []string { return policy.EvictionNames() }

// Prefetchers returns the registered prefetcher names, sorted.
func Prefetchers() []string { return policy.PrefetchNames() }

// PolicyDescription returns the one-line description a registration declared,
// or "" if the (kind, name) is unknown.
func PolicyDescription(kind PolicyKind, name string) string {
	reg, err := policy.Lookup(kind, name)
	if err != nil {
		return ""
	}
	return reg.Description
}
